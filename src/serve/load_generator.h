/**
 * @file
 * Open/closed-loop load generation + tail-latency measurement for the
 * serving tier.
 *
 * Two canonical load models (the SPEC/TailBench distinction the HPC
 * serving-characterization literature insists on):
 *
 *  - CLOSED loop (qps = 0): `concurrency` client threads each keep
 *    exactly one request in flight (issue, wait, repeat). Throughput
 *    is demand-limited by the service rate; latency excludes queueing
 *    that an overloaded open system would see. Latency per request is
 *    completion - enqueue.
 *  - OPEN loop (qps > 0): one dispatcher issues requests on a fixed
 *    schedule (request k at start + k/qps) regardless of completions,
 *    like independent users arriving. Latency is measured from the
 *    SCHEDULED time, not the actual enqueue -- the standard guard
 *    against coordinated omission: if the system falls behind, the
 *    backlog correctly counts against tail latency.
 *
 * Queries are deterministic functions of (seed, request id): dense
 * features uniform in [-1, 1), table rows drawn through the same
 * AccessGenerator families training data uses (uniform / hot-cold /
 * Zipf), so a skewed serving workload hammers the same hot rows the
 * paper's skewed training datasets do.
 */

#ifndef LAZYDP_SERVE_LOAD_GENERATOR_H
#define LAZYDP_SERVE_LOAD_GENERATOR_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "data/access_generator.h"
#include "nn/model_config.h"
#include "serve/serve_engine.h"

namespace lazydp {

/** Load-generation knobs. */
struct LoadOptions
{
    /** Total requests to issue. */
    std::uint64_t requests = 1000;

    /**
     * Open-loop aggregate arrival rate in queries/second; 0 selects
     * the closed loop.
     */
    double qps = 0.0;

    /** Closed loop: number of one-in-flight client threads. */
    std::size_t concurrency = 4;

    /** Query-generation seed (queries are pure in (seed, id)). */
    std::uint64_t seed = 1;

    /** Table-access skew of the generated queries. */
    AccessConfig access;

    /**
     * Keep every request's predicted score in LoadReport::scores
     * (indexed by request id). With a fixed model version the scores
     * are a pure function of (seed, id), which is what the bit-identity
     * smokes compare across snapshot-store modes.
     */
    bool collectScores = false;
};

/** Measured outcome of one LoadGenerator::run. */
struct LoadReport
{
    std::uint64_t completed = 0;  //!< requests scored
    double wallSeconds = 0.0;     //!< first issue to last completion

    /**
     * Latency percentiles in SECONDS (closed loop: completion -
     * enqueue; open loop: completion - scheduled arrival).
     */
    stats::Percentiles latency;

    std::uint64_t minVersion = 0; //!< oldest snapshot version observed
    std::uint64_t maxVersion = 0; //!< newest snapshot version observed
    double meanBatch = 0.0;       //!< mean micro-batch size observed

    /**
     * Per-request scores indexed by request id (empty unless
     * LoadOptions::collectScores).
     */
    std::vector<float> scores;

    /** @return achieved throughput in queries/second. */
    double
    qps() const
    {
        return wallSeconds <= 0.0
                   ? 0.0
                   : static_cast<double>(completed) / wallSeconds;
    }
};

/** Drives a ServeEngine with synthetic single-user queries. */
class LoadGenerator
{
  public:
    /**
     * @param engine serving engine under load (not owned)
     * @param config model shape (query dimensions)
     * @param options load model + skew
     */
    LoadGenerator(ServeEngine &engine, const ModelConfig &config,
                  const LoadOptions &options);

    /**
     * Issue options.requests queries, wait for all completions, and
     * summarize. Blocking; spawns its own client threads (clients
     * simulate external users, so they deliberately do NOT run on the
     * serving pool's lanes).
     */
    LoadReport run();

    /** @return the deterministic query for @p id (tests replay these). */
    ServeQuery makeQuery(std::uint64_t id) const;

  private:
    LoadReport runClosed();
    LoadReport runOpen();

    ServeEngine &engine_;
    ModelConfig config_;
    LoadOptions options_;
    std::vector<AccessGenerator> generators_; // one per table
};

} // namespace lazydp

#endif // LAZYDP_SERVE_LOAD_GENERATOR_H
