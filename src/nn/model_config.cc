#include "nn/model_config.h"

#include <algorithm>

#include "common/logging.h"

namespace lazydp {

std::uint64_t
ModelConfig::rowsForTable(std::size_t t) const
{
    if (rowsPerTableVec.empty())
        return rowsPerTable;
    return rowsPerTableVec[t];
}

std::uint64_t
ModelConfig::maxTableRows() const
{
    std::uint64_t rows = 0;
    for (std::size_t t = 0; t < numTables; ++t)
        rows = std::max(rows, rowsForTable(t));
    return rows;
}

std::uint64_t
ModelConfig::totalRows() const
{
    std::uint64_t rows = 0;
    for (std::size_t t = 0; t < numTables; ++t)
        rows += rowsForTable(t);
    return rows;
}

std::uint64_t
ModelConfig::tableBytes() const
{
    return totalRows() * embedDim * sizeof(float);
}

std::size_t
ModelConfig::interactionDim() const
{
    const std::size_t n = numTables + 1;
    return embedDim + n * (n - 1) / 2;
}

std::vector<std::size_t>
ModelConfig::fullTopDims() const
{
    std::vector<std::size_t> dims;
    dims.reserve(topDims.size() + 1);
    dims.push_back(interactionDim());
    dims.insert(dims.end(), topDims.begin(), topDims.end());
    return dims;
}

void
ModelConfig::validate() const
{
    if (bottomDims.size() < 2)
        fatal("model '", name, "': bottom MLP needs >= 2 dims");
    if (bottomDims.front() != numDense)
        fatal("model '", name, "': bottom MLP input != numDense");
    if (bottomDims.back() != embedDim)
        fatal("model '", name, "': bottom MLP output != embedDim");
    if (topDims.empty() || topDims.back() != 1)
        fatal("model '", name, "': top MLP must end in width 1");
    if (rowsPerTable == 0 || numTables == 0 || embedDim == 0)
        fatal("model '", name, "': degenerate embedding shape");
    if (pooling == 0)
        fatal("model '", name, "': pooling must be >= 1");
    if (!rowsPerTableVec.empty() && rowsPerTableVec.size() != numTables)
        fatal("model '", name, "': rowsPerTableVec size != numTables");
    for (std::size_t t = 0; t < numTables; ++t) {
        if (rowsForTable(t) == 0)
            fatal("model '", name, "': table ", t, " has zero rows");
    }
}

namespace {

/** Rows per table so numTables tables of embedDim floats total bytes. */
std::uint64_t
rowsFor(std::uint64_t total_bytes, std::size_t num_tables,
        std::size_t embed_dim)
{
    const std::uint64_t per_row =
        static_cast<std::uint64_t>(embed_dim) * sizeof(float);
    const std::uint64_t rows =
        total_bytes / (per_row * static_cast<std::uint64_t>(num_tables));
    return rows == 0 ? 1 : rows;
}

} // namespace

ModelConfig
ModelConfig::mlperfDlrm(std::uint64_t total_table_bytes)
{
    ModelConfig c;
    c.name = "mlperf-dlrm";
    c.numDense = 13;
    c.numTables = 26;
    c.embedDim = 128;
    c.pooling = 1;
    c.rowsPerTable = rowsFor(total_table_bytes, c.numTables, c.embedDim);
    c.bottomDims = {13, 512, 256, 128};
    c.topDims = {1024, 1024, 512, 256, 1};
    return c;
}

ModelConfig
ModelConfig::mlperfBench(std::uint64_t total_table_bytes)
{
    ModelConfig c = mlperfDlrm(total_table_bytes);
    c.name = "mlperf-bench";
    c.bottomDims = {13, 128, 128};
    c.topDims = {256, 128, 1};
    return c;
}

ModelConfig
ModelConfig::rmc1(std::uint64_t total_table_bytes)
{
    // DeepRecSys RMC1: embedding-lookup heavy -- few tables, many
    // lookups per table.
    ModelConfig c;
    c.name = "rmc1";
    c.numDense = 13;
    c.numTables = 8;
    c.embedDim = 64;
    c.pooling = 20;
    c.rowsPerTable = rowsFor(total_table_bytes, c.numTables, c.embedDim);
    c.bottomDims = {13, 256, 128, 64};
    c.topDims = {256, 64, 1};
    return c;
}

ModelConfig
ModelConfig::rmc2(std::uint64_t total_table_bytes)
{
    // RMC2: many tables, moderate pooling.
    ModelConfig c;
    c.name = "rmc2";
    c.numDense = 13;
    c.numTables = 40;
    c.embedDim = 64;
    c.pooling = 4;
    c.rowsPerTable = rowsFor(total_table_bytes, c.numTables, c.embedDim);
    c.bottomDims = {13, 256, 128, 64};
    c.topDims = {512, 128, 1};
    return c;
}

ModelConfig
ModelConfig::rmc3(std::uint64_t total_table_bytes)
{
    // RMC3: capacity-dominated -- few huge tables, single lookup.
    ModelConfig c;
    c.name = "rmc3";
    c.numDense = 13;
    c.numTables = 4;
    c.embedDim = 64;
    c.pooling = 1;
    c.rowsPerTable = rowsFor(total_table_bytes, c.numTables, c.embedDim);
    c.bottomDims = {13, 128, 64};
    c.topDims = {128, 64, 1};
    return c;
}

ModelConfig
ModelConfig::mlperfHetero(std::uint64_t total_table_bytes)
{
    ModelConfig c = mlperfBench(total_table_bytes);
    c.name = "mlperf-hetero";
    // power-law table sizes: table t gets a share proportional to
    // 1 / (t + 1), normalized to the byte budget
    double denom = 0.0;
    for (std::size_t t = 0; t < c.numTables; ++t)
        denom += 1.0 / static_cast<double>(t + 1);
    const double total_rows = static_cast<double>(
        total_table_bytes / (c.embedDim * sizeof(float)));
    c.rowsPerTableVec.resize(c.numTables);
    for (std::size_t t = 0; t < c.numTables; ++t) {
        const double share =
            (1.0 / static_cast<double>(t + 1)) / denom;
        c.rowsPerTableVec[t] = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(share * total_rows));
    }
    c.rowsPerTable = c.rowsPerTableVec.front();
    return c;
}

ModelConfig
ModelConfig::tiny()
{
    ModelConfig c;
    c.name = "tiny";
    c.numDense = 4;
    c.numTables = 3;
    c.embedDim = 8;
    c.pooling = 2;
    c.rowsPerTable = 64;
    c.bottomDims = {4, 16, 8};
    c.topDims = {8, 1};
    return c;
}

} // namespace lazydp
