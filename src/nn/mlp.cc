#include "nn/mlp.h"

#include <cmath>

#include "common/macros.h"
#include "rng/xoshiro.h"
#include "tensor/matmul.h"
#include "tensor/simd_kernels.h"

namespace lazydp {

std::uint64_t
PerExampleGrads::bytes() const
{
    std::uint64_t total = 0;
    for (const auto &t : w)
        total += t.size() * sizeof(float);
    for (const auto &t : b)
        total += t.size() * sizeof(float);
    return total;
}

void
MlpGradSums::ensureShape(const Mlp &mlp)
{
    const auto &layers = mlp.layers();
    w.resize(layers.size());
    b.resize(layers.size());
    for (std::size_t li = 0; li < layers.size(); ++li) {
        if (w[li].rows() != layers[li].outDim() ||
            w[li].cols() != layers[li].inDim())
            w[li].resize(layers[li].outDim(), layers[li].inDim());
        if (b[li].rows() != 1 || b[li].cols() != layers[li].outDim())
            b[li].resize(1, layers[li].outDim());
    }
}

void
MlpGradSums::zero()
{
    for (auto &t : w)
        t.zero();
    for (auto &t : b)
        t.zero();
}

LinearLayer::LinearLayer(std::size_t in, std::size_t out)
    : in_(in), out_(out), w_(out, in), b_(1, out), w_grad_(out, in),
      b_grad_(1, out)
{
    LAZYDP_ASSERT(in > 0 && out > 0, "degenerate linear layer");
}

void
LinearLayer::initUniform(std::uint64_t seed)
{
    Xoshiro256 rng(seed);
    const float bound = 1.0f / std::sqrt(static_cast<float>(in_));
    for (std::size_t i = 0; i < w_.size(); ++i)
        w_.data()[i] = (2.0f * rng.nextFloat() - 1.0f) * bound;
    for (std::size_t i = 0; i < b_.size(); ++i)
        b_.data()[i] = (2.0f * rng.nextFloat() - 1.0f) * bound;
}

void
LinearLayer::forward(const Tensor &x, Tensor &y, ExecContext &exec)
{
    forwardInto(x, y, x_cache_, exec);
}

void
LinearLayer::forwardInto(const Tensor &x, Tensor &y, Tensor &x_cache,
                         ExecContext &exec) const
{
    LAZYDP_ASSERT(x.cols() == in_, "linear forward input width");
    if (x_cache.rows() != x.rows() || x_cache.cols() != x.cols())
        x_cache.resize(x.rows(), x.cols());
    x_cache.copyFrom(x);
    matmulABt(x, w_, y, false, exec);
    addRowBias(y, b_);
}

void
LinearLayer::backward(const Tensor &d_y, Tensor *d_x,
                      bool skip_param_grads, ExecContext &exec)
{
    backwardFrom(d_y, x_cache_, d_x,
                 skip_param_grads ? nullptr : &w_grad_,
                 skip_param_grads ? nullptr : &b_grad_, exec);
}

void
LinearLayer::backwardFrom(const Tensor &d_y, const Tensor &x_cache,
                          Tensor *d_x, Tensor *w_grad, Tensor *b_grad,
                          ExecContext &exec) const
{
    const std::size_t batch = d_y.rows();
    LAZYDP_ASSERT(d_y.cols() == out_, "linear backward grad width");
    LAZYDP_ASSERT(x_cache.rows() == batch,
                  "backward batch != cached forward batch");

    if (d_x != nullptr) {
        LAZYDP_ASSERT(d_x->rows() == batch && d_x->cols() == in_,
                      "linear d_x shape");
        // dX = dY * W
        matmulAB(d_y, w_, *d_x, false, exec);
    }

    if (w_grad == nullptr)
        return;
    LAZYDP_ASSERT(b_grad != nullptr, "weight/bias grads travel together");
    // dW = dY^T X, db = column sums of dY
    matmulAtB(d_y, x_cache, *w_grad, false, exec);
    reduceRows(d_y, *b_grad);
}

void
LinearLayer::accumulateGhostNormSq(const Tensor &d_y,
                                   std::vector<double> &out) const
{
    accumulateGhostNormSqFrom(d_y, x_cache_, out);
}

void
LinearLayer::accumulateGhostNormSqFrom(const Tensor &d_y,
                                       const Tensor &x_cache,
                                       std::vector<double> &out) const
{
    const std::size_t batch = d_y.rows();
    LAZYDP_ASSERT(out.size() == batch, "ghost-norm accumulator length");
    LAZYDP_ASSERT(x_cache.rows() == batch, "ghost norm needs forward cache");
    for (std::size_t e = 0; e < batch; ++e) {
        const double g2 =
            simd::squaredNorm(d_y.data() + e * out_, out_);
        const double a2 =
            simd::squaredNorm(x_cache.data() + e * in_, in_);
        out[e] += g2 * a2 + g2; // weight term + bias term
    }
}

void
LinearLayer::perExampleGrads(const Tensor &d_y, Tensor &w_grads,
                             Tensor &b_grads, ExecContext &exec) const
{
    perExampleGradsFrom(d_y, x_cache_, w_grads, b_grads, exec);
}

void
LinearLayer::perExampleGradsFrom(const Tensor &d_y, const Tensor &x_cache,
                                 Tensor &w_grads, Tensor &b_grads,
                                 ExecContext &exec) const
{
    const std::size_t batch = d_y.rows();
    LAZYDP_ASSERT(x_cache.rows() == batch,
                  "per-example grads need forward cache");
    w_grads.resizeNoShrink(batch, out_ * in_);
    b_grads.resizeNoShrink(batch, out_);

    parallelFor(exec, batch, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t e = lo; e < hi; ++e) {
            const float *g = d_y.data() + e * out_;
            const float *a = x_cache.data() + e * in_;
            float *wg = w_grads.data() + e * out_ * in_;
            for (std::size_t o = 0; o < out_; ++o) {
                // row o of dW_e = g[o] * a
                float *dst = wg + o * in_;
                const float go = g[o];
                for (std::size_t i = 0; i < in_; ++i)
                    dst[i] = go * a[i];
            }
            std::memcpy(b_grads.data() + e * out_, g,
                        out_ * sizeof(float));
        }
    });
}

void
LinearLayer::apply(float lr, float decay)
{
    if (decay == 1.0f) {
        simd::axpy(w_.data(), w_grad_.data(), w_.size(), -lr);
        simd::axpy(b_.data(), b_grad_.data(), b_.size(), -lr);
    } else {
        simd::axpby(w_.data(), w_grad_.data(), w_.size(), -lr, decay);
        simd::axpby(b_.data(), b_grad_.data(), b_.size(), -lr, decay);
    }
}

Mlp::Mlp(const std::vector<std::size_t> &dims, std::uint64_t seed)
    : dims_(dims)
{
    LAZYDP_ASSERT(dims.size() >= 2, "MLP needs at least one layer");
    layers_.reserve(dims.size() - 1);
    for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
        layers_.emplace_back(dims[l], dims[l + 1]);
        layers_.back().initUniform(seed + 0x1000 * (l + 1));
    }
}

void
Mlp::ensureWorkspace(MlpWorkspace &ws) const
{
    if (ws.xCache.size() != layers_.size()) {
        ws.xCache.resize(layers_.size());
        ws.zCache.resize(layers_.size());
        ws.gradScratch.resize(layers_.size());
    }
}

void
Mlp::forward(const Tensor &x, Tensor &y, ExecContext &exec)
{
    static_cast<const Mlp &>(*this).forward(x, y, ws_, exec);
}

void
Mlp::forward(const Tensor &x, Tensor &y, MlpWorkspace &ws,
             ExecContext &exec) const
{
    LAZYDP_ASSERT(x.cols() == dims_.front(), "MLP input width");
    ensureWorkspace(ws);
    const std::size_t batch = x.rows();

    const Tensor *cur = &x;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        Tensor &z = ws.zCache[l];
        if (z.rows() != batch || z.cols() != layers_[l].outDim())
            z.resize(batch, layers_[l].outDim());
        layers_[l].forwardInto(*cur, z, ws.xCache[l], exec);
        if (l + 1 < layers_.size()) {
            // ReLU in place on a copy kept as the next layer's input;
            // we keep z pre-activation for the backward mask, so apply
            // ReLU into the next buffer.
            simd::reluForward(z.data(), z.data(), z.size());
        }
        cur = &z;
    }
    if (y.rows() != batch || y.cols() != dims_.back())
        y.resize(batch, dims_.back());
    y.copyFrom(ws.zCache.back());
}

template <typename LayerHook>
void
Mlp::backwardImpl(const Tensor &d_y, Tensor *d_x, MlpWorkspace &ws,
                  LayerHook &&hook) const
{
    const std::size_t batch = d_y.rows();
    LAZYDP_ASSERT(d_y.cols() == dims_.back(), "MLP upstream grad width");
    ensureWorkspace(ws);

    const Tensor *cur_grad = &d_y;
    for (std::size_t li = layers_.size(); li-- > 0;) {
        const LinearLayer &layer = layers_[li];
        Tensor *dst = nullptr;
        if (li > 0) {
            Tensor &scratch = ws.gradScratch[li];
            if (scratch.rows() != batch ||
                scratch.cols() != layer.inDim()) {
                scratch.resize(batch, layer.inDim());
            }
            dst = &scratch;
        } else {
            dst = d_x; // may be nullptr (skip input grads)
        }

        hook(li, *cur_grad, dst);

        if (li > 0) {
            // The scratch now holds gradients wrt the *post-ReLU*
            // activation of layer li-1; mask through the ReLU. The
            // cached z of layer li-1 already had ReLU applied in
            // place, and relu'(x) as a mask of (post-relu > 0) equals
            // the mask of (pre-relu > 0) except at exactly 0 where both
            // are 0 -- identical gradients.
            const Tensor &activated = ws.zCache[li - 1];
            simd::reluBackward(dst->data(), activated.data(), dst->data(),
                               dst->size());
            cur_grad = dst;
        }
    }
}

void
Mlp::backward(const Tensor &d_y, Tensor *d_x,
              std::vector<double> *ghost_norm_sq, bool skip_param_grads,
              ExecContext &exec)
{
    backward(d_y, d_x, ghost_norm_sq, skip_param_grads, ws_, exec);
}

void
Mlp::backward(const Tensor &d_y, Tensor *d_x,
              std::vector<double> *ghost_norm_sq, bool skip_param_grads,
              MlpWorkspace &ws, ExecContext &exec)
{
    backwardImpl(d_y, d_x, ws,
                 [&](std::size_t li, const Tensor &g, Tensor *dx) {
                     LinearLayer &layer = layers_[li];
                     if (ghost_norm_sq != nullptr)
                         layer.accumulateGhostNormSqFrom(
                             g, ws.xCache[li], *ghost_norm_sq);
                     layer.backwardFrom(
                         g, ws.xCache[li], dx,
                         skip_param_grads ? nullptr : &layer.weightGrad(),
                         skip_param_grads ? nullptr : &layer.biasGrad(),
                         exec);
                 });
}

void
Mlp::backward(const Tensor &d_y, Tensor *d_x,
              std::vector<double> *ghost_norm_sq, bool skip_param_grads,
              MlpWorkspace &ws, MlpGradSums *sums, ExecContext &exec) const
{
    if (!skip_param_grads) {
        LAZYDP_ASSERT(sums != nullptr,
                      "workspace backward needs caller-owned grad sums");
        sums->ensureShape(*this);
    }
    backwardImpl(d_y, d_x, ws,
                 [&](std::size_t li, const Tensor &g, Tensor *dx) {
                     const LinearLayer &layer = layers_[li];
                     if (ghost_norm_sq != nullptr)
                         layer.accumulateGhostNormSqFrom(
                             g, ws.xCache[li], *ghost_norm_sq);
                     layer.backwardFrom(
                         g, ws.xCache[li], dx,
                         skip_param_grads ? nullptr : &sums->w[li],
                         skip_param_grads ? nullptr : &sums->b[li], exec);
                 });
}

void
Mlp::backwardNormsOnly(const Tensor &d_y, Tensor *d_x,
                       std::vector<double> &norm_sq, ExecContext &exec)
{
    static_cast<const Mlp &>(*this).backwardNormsOnly(d_y, d_x, norm_sq,
                                                      ws_, exec);
}

void
Mlp::backwardNormsOnly(const Tensor &d_y, Tensor *d_x,
                       std::vector<double> &norm_sq, MlpWorkspace &ws,
                       ExecContext &exec) const
{
    const std::size_t batch = d_y.rows();
    LAZYDP_ASSERT(norm_sq.size() == batch, "norm accumulator length");
    backwardImpl(d_y, d_x, ws,
                 [&](std::size_t li, const Tensor &g, Tensor *dx) {
                     const LinearLayer &layer = layers_[li];
                     layer.perExampleGradsFrom(g, ws.xCache[li], ws.normW,
                                               ws.normB, exec);
                     parallelFor(exec, batch,
                                 [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t e = lo; e < hi; ++e) {
                             norm_sq[e] += simd::squaredNorm(
                                 ws.normW.data() + e * ws.normW.cols(),
                                 ws.normW.cols());
                             norm_sq[e] += simd::squaredNorm(
                                 ws.normB.data() + e * ws.normB.cols(),
                                 ws.normB.cols());
                         }
                     });
                     if (dx != nullptr)
                         matmulAB(g, layer.weight(), *dx, false, exec);
                 });
}

void
Mlp::backwardPerExample(const Tensor &d_y, Tensor *d_x,
                        PerExampleGrads &grads, ExecContext &exec)
{
    static_cast<const Mlp &>(*this).backwardPerExample(d_y, d_x, grads,
                                                       ws_, exec);
}

void
Mlp::backwardPerExample(const Tensor &d_y, Tensor *d_x,
                        PerExampleGrads &grads, MlpWorkspace &ws,
                        ExecContext &exec) const
{
    grads.w.resize(layers_.size());
    grads.b.resize(layers_.size());
    backwardImpl(d_y, d_x, ws,
                 [&](std::size_t li, const Tensor &g, Tensor *dx) {
                     const LinearLayer &layer = layers_[li];
                     layer.perExampleGradsFrom(g, ws.xCache[li],
                                               grads.w[li], grads.b[li],
                                               exec);
                     // Input gradients still require the batch backward
                     // (dX = dY W); weight gradients are not needed here.
                     if (dx != nullptr)
                         matmulAB(g, layer.weight(), *dx, false, exec);
                 });
}

void
Mlp::apply(float lr, float decay)
{
    for (auto &layer : layers_)
        layer.apply(lr, decay);
}

void
Mlp::copyWeightsFrom(const Mlp &other)
{
    LAZYDP_ASSERT(layers_.size() == other.layers_.size(),
                  "copyWeightsFrom across different MLP stacks");
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        layers_[l].weight().copyFrom(other.layers_[l].weight());
        layers_[l].bias().copyFrom(other.layers_[l].bias());
    }
}

std::size_t
Mlp::paramCount() const
{
    std::size_t n = 0;
    for (const auto &layer : layers_)
        n += layer.paramCount();
    return n;
}

} // namespace lazydp
