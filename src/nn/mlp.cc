#include "nn/mlp.h"

#include <cmath>

#include "common/macros.h"
#include "rng/xoshiro.h"
#include "tensor/matmul.h"
#include "tensor/simd_kernels.h"

namespace lazydp {

std::uint64_t
PerExampleGrads::bytes() const
{
    std::uint64_t total = 0;
    for (const auto &t : w)
        total += t.size() * sizeof(float);
    for (const auto &t : b)
        total += t.size() * sizeof(float);
    return total;
}

LinearLayer::LinearLayer(std::size_t in, std::size_t out)
    : in_(in), out_(out), w_(out, in), b_(1, out), w_grad_(out, in),
      b_grad_(1, out)
{
    LAZYDP_ASSERT(in > 0 && out > 0, "degenerate linear layer");
}

void
LinearLayer::initUniform(std::uint64_t seed)
{
    Xoshiro256 rng(seed);
    const float bound = 1.0f / std::sqrt(static_cast<float>(in_));
    for (std::size_t i = 0; i < w_.size(); ++i)
        w_.data()[i] = (2.0f * rng.nextFloat() - 1.0f) * bound;
    for (std::size_t i = 0; i < b_.size(); ++i)
        b_.data()[i] = (2.0f * rng.nextFloat() - 1.0f) * bound;
}

void
LinearLayer::forward(const Tensor &x, Tensor &y, ExecContext &exec)
{
    LAZYDP_ASSERT(x.cols() == in_, "linear forward input width");
    if (x_cache_.rows() != x.rows() || x_cache_.cols() != x.cols())
        x_cache_.resize(x.rows(), x.cols());
    x_cache_.copyFrom(x);
    matmulABt(x, w_, y, false, exec);
    addRowBias(y, b_);
}

void
LinearLayer::backward(const Tensor &d_y, Tensor *d_x,
                      bool skip_param_grads, ExecContext &exec)
{
    const std::size_t batch = d_y.rows();
    LAZYDP_ASSERT(d_y.cols() == out_, "linear backward grad width");
    LAZYDP_ASSERT(x_cache_.rows() == batch,
                  "backward batch != cached forward batch");

    if (d_x != nullptr) {
        LAZYDP_ASSERT(d_x->rows() == batch && d_x->cols() == in_,
                      "linear d_x shape");
        // dX = dY * W
        matmulAB(d_y, w_, *d_x, false, exec);
    }

    if (skip_param_grads)
        return;
    // dW = dY^T X, db = column sums of dY
    matmulAtB(d_y, x_cache_, w_grad_, false, exec);
    reduceRows(d_y, b_grad_);
}

void
LinearLayer::accumulateGhostNormSq(const Tensor &d_y,
                                   std::vector<double> &out) const
{
    const std::size_t batch = d_y.rows();
    LAZYDP_ASSERT(out.size() == batch, "ghost-norm accumulator length");
    LAZYDP_ASSERT(x_cache_.rows() == batch, "ghost norm needs forward cache");
    for (std::size_t e = 0; e < batch; ++e) {
        const double g2 =
            simd::squaredNorm(d_y.data() + e * out_, out_);
        const double a2 =
            simd::squaredNorm(x_cache_.data() + e * in_, in_);
        out[e] += g2 * a2 + g2; // weight term + bias term
    }
}

void
LinearLayer::perExampleGrads(const Tensor &d_y, Tensor &w_grads,
                             Tensor &b_grads, ExecContext &exec) const
{
    const std::size_t batch = d_y.rows();
    LAZYDP_ASSERT(x_cache_.rows() == batch,
                  "per-example grads need forward cache");
    w_grads.resizeNoShrink(batch, out_ * in_);
    b_grads.resizeNoShrink(batch, out_);

    parallelFor(exec, batch, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t e = lo; e < hi; ++e) {
            const float *g = d_y.data() + e * out_;
            const float *a = x_cache_.data() + e * in_;
            float *wg = w_grads.data() + e * out_ * in_;
            for (std::size_t o = 0; o < out_; ++o) {
                // row o of dW_e = g[o] * a
                float *dst = wg + o * in_;
                const float go = g[o];
                for (std::size_t i = 0; i < in_; ++i)
                    dst[i] = go * a[i];
            }
            std::memcpy(b_grads.data() + e * out_, g,
                        out_ * sizeof(float));
        }
    });
}

void
LinearLayer::apply(float lr, float decay)
{
    if (decay == 1.0f) {
        simd::axpy(w_.data(), w_grad_.data(), w_.size(), -lr);
        simd::axpy(b_.data(), b_grad_.data(), b_.size(), -lr);
    } else {
        simd::axpby(w_.data(), w_grad_.data(), w_.size(), -lr, decay);
        simd::axpby(b_.data(), b_grad_.data(), b_.size(), -lr, decay);
    }
}

Mlp::Mlp(const std::vector<std::size_t> &dims, std::uint64_t seed)
    : dims_(dims)
{
    LAZYDP_ASSERT(dims.size() >= 2, "MLP needs at least one layer");
    layers_.reserve(dims.size() - 1);
    for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
        layers_.emplace_back(dims[l], dims[l + 1]);
        layers_.back().initUniform(seed + 0x1000 * (l + 1));
    }
    z_cache_.resize(layers_.size());
    grad_scratch_.resize(layers_.size());
}

void
Mlp::forward(const Tensor &x, Tensor &y, ExecContext &exec)
{
    LAZYDP_ASSERT(x.cols() == dims_.front(), "MLP input width");
    const std::size_t batch = x.rows();

    const Tensor *cur = &x;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        Tensor &z = z_cache_[l];
        if (z.rows() != batch || z.cols() != layers_[l].outDim())
            z.resize(batch, layers_[l].outDim());
        layers_[l].forward(*cur, z, exec);
        if (l + 1 < layers_.size()) {
            // ReLU in place on a copy kept as the next layer's input;
            // we keep z pre-activation for the backward mask, so apply
            // ReLU into the next buffer.
            simd::reluForward(z.data(), z.data(), z.size());
        }
        cur = &z;
    }
    if (y.rows() != batch || y.cols() != dims_.back())
        y.resize(batch, dims_.back());
    y.copyFrom(z_cache_.back());
}

template <typename LayerHook>
void
Mlp::backwardImpl(const Tensor &d_y, Tensor *d_x, LayerHook &&hook)
{
    const std::size_t batch = d_y.rows();
    LAZYDP_ASSERT(d_y.cols() == dims_.back(), "MLP upstream grad width");

    const Tensor *cur_grad = &d_y;
    for (std::size_t li = layers_.size(); li-- > 0;) {
        LinearLayer &layer = layers_[li];
        Tensor *dst = nullptr;
        if (li > 0) {
            Tensor &scratch = grad_scratch_[li];
            if (scratch.rows() != batch ||
                scratch.cols() != layer.inDim()) {
                scratch.resize(batch, layer.inDim());
            }
            dst = &scratch;
        } else {
            dst = d_x; // may be nullptr (skip input grads)
        }

        hook(layer, *cur_grad, dst);

        if (li > 0) {
            // The scratch now holds gradients wrt the *post-ReLU*
            // activation of layer li-1; mask through the ReLU. The
            // cached z of layer li-1 already had ReLU applied in
            // place, and relu'(x) as a mask of (post-relu > 0) equals
            // the mask of (pre-relu > 0) except at exactly 0 where both
            // are 0 -- identical gradients.
            const Tensor &activated = z_cache_[li - 1];
            simd::reluBackward(dst->data(), activated.data(), dst->data(),
                               dst->size());
            cur_grad = dst;
        }
    }
}

void
Mlp::backward(const Tensor &d_y, Tensor *d_x,
              std::vector<double> *ghost_norm_sq, bool skip_param_grads,
              ExecContext &exec)
{
    backwardImpl(d_y, d_x,
                 [&](LinearLayer &layer, const Tensor &g, Tensor *dx) {
                     if (ghost_norm_sq != nullptr)
                         layer.accumulateGhostNormSq(g, *ghost_norm_sq);
                     layer.backward(g, dx, skip_param_grads, exec);
                 });
}

void
Mlp::backwardNormsOnly(const Tensor &d_y, Tensor *d_x,
                       std::vector<double> &norm_sq, ExecContext &exec)
{
    const std::size_t batch = d_y.rows();
    LAZYDP_ASSERT(norm_sq.size() == batch, "norm accumulator length");
    Tensor &w_scratch = norm_scratch_w_;
    Tensor &b_scratch = norm_scratch_b_;
    backwardImpl(d_y, d_x,
                 [&](LinearLayer &layer, const Tensor &g, Tensor *dx) {
                     layer.perExampleGrads(g, w_scratch, b_scratch, exec);
                     parallelFor(exec, batch,
                                 [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t e = lo; e < hi; ++e) {
                             norm_sq[e] += simd::squaredNorm(
                                 w_scratch.data() + e * w_scratch.cols(),
                                 w_scratch.cols());
                             norm_sq[e] += simd::squaredNorm(
                                 b_scratch.data() + e * b_scratch.cols(),
                                 b_scratch.cols());
                         }
                     });
                     if (dx != nullptr)
                         matmulAB(g, layer.weight(), *dx, false, exec);
                 });
}

void
Mlp::backwardPerExample(const Tensor &d_y, Tensor *d_x,
                        PerExampleGrads &grads, ExecContext &exec)
{
    grads.w.resize(layers_.size());
    grads.b.resize(layers_.size());
    // Layers are visited in reverse; map to per-layer slots by pointer
    // arithmetic on the layers_ vector.
    backwardImpl(d_y, d_x,
                 [&](LinearLayer &layer, const Tensor &g, Tensor *dx) {
                     const auto li = static_cast<std::size_t>(
                         &layer - layers_.data());
                     layer.perExampleGrads(g, grads.w[li], grads.b[li],
                                           exec);
                     // Input gradients still require the batch backward
                     // (dX = dY W); weight gradients are not needed here.
                     if (dx != nullptr)
                         matmulAB(g, layer.weight(), *dx, false, exec);
                 });
}

void
Mlp::apply(float lr, float decay)
{
    for (auto &layer : layers_)
        layer.apply(lr, decay);
}

std::size_t
Mlp::paramCount() const
{
    std::size_t n = 0;
    for (const auto &layer : layers_)
        n += layer.paramCount();
    return n;
}

// Explicit instantiation not needed; backwardImpl is used only in this TU.

} // namespace lazydp
