/**
 * @file
 * RecSys model configurations used by the paper's evaluation.
 *
 * The paper's default is the MLPerf (v2.1) DLRM: 8 MLP layers, 26
 * embedding tables, 128-dim embeddings, 96 GB total (Section 6). Its
 * Figure 13(c) additionally studies RMC1/RMC2/RMC3 from DeepRecSys
 * (Gupta et al., HPCA 2020).
 *
 * Because this repository runs on a single host with 21 GB of DRAM,
 * each preset takes a `scale_divisor` that shrinks the *row count* of
 * every table (exactly how the paper itself scales 96 GB down to 96 MB
 * in Section 4). All other shape parameters are unchanged, so per-row
 * behaviour (noise per element, pooling, MLP work) is preserved and
 * table-size sweeps remain apples-to-apples.
 */

#ifndef LAZYDP_NN_MODEL_CONFIG_H
#define LAZYDP_NN_MODEL_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace lazydp {

/** Full shape description of a DLRM-style model. */
struct ModelConfig
{
    std::string name = "custom";

    std::size_t numDense = 13;   //!< dense input features
    std::size_t numTables = 26;  //!< embedding tables
    std::uint64_t rowsPerTable = 1u << 16;

    /**
     * Optional per-table row counts (real DLRMs have wildly different
     * cardinalities per categorical feature). Empty means every table
     * has rowsPerTable rows; otherwise must have numTables entries.
     */
    std::vector<std::uint64_t> rowsPerTableVec;

    std::size_t embedDim = 128;  //!< embedding dimension
    std::size_t pooling = 1;     //!< lookups per table per example

    /** Bottom MLP widths, first == numDense, last == embedDim. */
    std::vector<std::size_t> bottomDims;

    /** Top MLP hidden widths + output (input width is derived). */
    std::vector<std::size_t> topDims;

    /** @return row count of table @p t (uniform or per-table). */
    std::uint64_t rowsForTable(std::size_t t) const;

    /** @return the largest table's row count. */
    std::uint64_t maxTableRows() const;

    /** @return total embedding rows across tables. */
    std::uint64_t totalRows() const;

    /** @return total embedding-table bytes (the paper's model size). */
    std::uint64_t tableBytes() const;

    /** @return the top MLP's input width (interaction output). */
    std::size_t interactionDim() const;

    /** @return full top-MLP dims including the derived input width. */
    std::vector<std::size_t> fullTopDims() const;

    /** Validate internal consistency (fatal() on error). */
    void validate() const;

    /**
     * MLPerf DLRM (paper default), scaled so all 26 tables total
     * roughly @p total_table_bytes. The true MLP stacks
     * (13-512-256-128 bottom, 479-1024-1024-512-256-1 top) are kept.
     */
    static ModelConfig mlperfDlrm(std::uint64_t total_table_bytes);

    /**
     * MLPerf DLRM with slimmed MLPs (13-128-128 / 479-256-128-1) for
     * benchmark runs where MLP GEMM time would otherwise dominate the
     * wall-clock budget without changing the embedding-table story.
     */
    static ModelConfig mlperfBench(std::uint64_t total_table_bytes);

    /**
     * DeepRecSys-style RMC1: few small tables, high pooling
     * (embedding-dominated compute, small capacity).
     */
    static ModelConfig rmc1(std::uint64_t total_table_bytes);

    /** RMC2: many tables, moderate pooling. */
    static ModelConfig rmc2(std::uint64_t total_table_bytes);

    /** RMC3: few very large tables, pooling 1 (capacity-dominated). */
    static ModelConfig rmc3(std::uint64_t total_table_bytes);

    /**
     * MLPerf-style DLRM with *heterogeneous* table sizes following a
     * power-law (a few huge tables, a long tail of small ones), summing
     * to roughly @p total_table_bytes. Closer to production models than
     * the uniform presets.
     */
    static ModelConfig mlperfHetero(std::uint64_t total_table_bytes);

    /** Tiny config for unit tests (runs in milliseconds). */
    static ModelConfig tiny();
};

} // namespace lazydp

#endif // LAZYDP_NN_MODEL_CONFIG_H
