#include "nn/table_page.h"

#include <new>

#include "common/macros.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define LAZYDP_HAVE_MMAN 1
#endif

namespace lazydp {

namespace {

constexpr std::size_t kPageAlign = 64; //!< SIMD kernel alignment

#if defined(LAZYDP_HAVE_MMAN)
std::size_t
roundToOsPage(std::size_t bytes)
{
    const auto os_page =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    return (bytes + os_page - 1) / os_page * os_page;
}
#endif

} // namespace

TablePage::TablePage(std::size_t floats, bool use_mmap)
    : floats_(floats)
{
    LAZYDP_ASSERT(floats > 0, "degenerate table page");
#if defined(LAZYDP_HAVE_MMAN)
    if (use_mmap) {
        mapBytes_ = roundToOsPage(floats * sizeof(float));
        void *mem = ::mmap(nullptr, mapBytes_, PROT_READ | PROT_WRITE,
                           MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        LAZYDP_ASSERT(mem != MAP_FAILED, "mmap of table page failed");
        data_ = static_cast<float *>(mem);
        mmapped_ = true;
        return;
    }
#else
    (void)use_mmap;
#endif
    data_ = static_cast<float *>(::operator new(
        floats * sizeof(float), std::align_val_t{kPageAlign}));
}

TablePage::~TablePage()
{
#if defined(LAZYDP_HAVE_MMAN)
    if (mmapped_) {
        ::munmap(data_, mapBytes_); // works regardless of protection
        return;
    }
#endif
    ::operator delete(data_, std::align_val_t{kPageAlign});
}

void
TablePage::seal()
{
#if defined(LAZYDP_HAVE_MMAN)
    if (!mmapped_ || sealed_)
        return;
    const int rc = ::mprotect(data_, mapBytes_, PROT_READ);
    LAZYDP_ASSERT(rc == 0, "mprotect(PROT_READ) failed");
    sealed_ = true;
#endif
}

void
TablePage::unseal()
{
#if defined(LAZYDP_HAVE_MMAN)
    if (!mmapped_ || !sealed_)
        return;
    const int rc = ::mprotect(data_, mapBytes_, PROT_READ | PROT_WRITE);
    LAZYDP_ASSERT(rc == 0, "mprotect(PROT_READ|PROT_WRITE) failed");
    sealed_ = false;
#endif
}

} // namespace lazydp
