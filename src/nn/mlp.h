/**
 * @file
 * Linear layers and MLP stacks with the hooks DP-SGD needs.
 *
 * Besides the usual forward/backward, each layer retains its input
 * activations so the DP engines can derive per-example weight gradients
 * (DP-SGD(B)), per-example gradient *norms* without materialization
 * (ghost norms, DP-SGD(F)), and reweighted batch gradients (DP-SGD(R)).
 */

#ifndef LAZYDP_NN_MLP_H
#define LAZYDP_NN_MLP_H

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "tensor/tensor.h"

namespace lazydp {

/**
 * Materialized per-example gradients of an MLP (one entry per layer).
 *
 * This is DP-SGD(B)'s memory-capacity burden: batch-size-times larger
 * than the model itself (Section 2.5 of the paper).
 */
struct PerExampleGrads
{
    std::vector<Tensor> w; //!< per layer: (batch x out*in), row e = vec(dW_e)
    std::vector<Tensor> b; //!< per layer: (batch x out), row e = db_e

    /** @return total bytes held (for OOM accounting in benches). */
    std::uint64_t bytes() const;
};

/**
 * Activation / scratch state of one forward+backward pass through an
 * Mlp. The model formerly cached this inside the layers; hoisting it
 * into a caller-owned workspace lets several lot shards run
 * forward/backward CONCURRENTLY against the same (read-only) weights --
 * the data-parallel replica path. The Mlp keeps one private workspace
 * for the classic single-caller entry points.
 */
struct MlpWorkspace
{
    std::vector<Tensor> xCache;      //!< per layer: forward input copy
    std::vector<Tensor> zCache;      //!< per layer: (post-ReLU) output
    std::vector<Tensor> gradScratch; //!< inter-layer gradient buffers
    // Per-example materialization scratch for backwardNormsOnly.
    Tensor normW;
    Tensor normB;
};

/**
 * Caller-owned per-layer batch-gradient sums (sum over the examples the
 * caller ran backward on). One lot shard fills one of these; the fixed
 * tree reduction then merges kLotShards of them into the layers' own
 * gradient tensors.
 */
struct MlpGradSums
{
    std::vector<Tensor> w; //!< per layer: (out x in) summed weight grads
    std::vector<Tensor> b; //!< per layer: (1 x out) summed bias grads

    /** Size both vectors to @p mlp 's layer shapes (idempotent). */
    void ensureShape(const class Mlp &mlp);

    /** Zero every tensor (used for empty lot shards). */
    void zero();
};

/** Fully connected layer y = x W^T + b with cached activations. */
class LinearLayer
{
  public:
    /**
     * @param in input features
     * @param out output features
     */
    LinearLayer(std::size_t in, std::size_t out);

    /** Kaiming-uniform style weight init. */
    void initUniform(std::uint64_t seed);

    /** y = x W^T + b; caches x for backward. */
    void forward(const Tensor &x, Tensor &y,
                 ExecContext &exec = ExecContext::serial());

    /**
     * Workspace forward: like forward() but the input copy lands in the
     * caller's @p x_cache instead of the layer -- const, so shards may
     * run it concurrently against shared weights.
     */
    void forwardInto(const Tensor &x, Tensor &y, Tensor &x_cache,
                     ExecContext &exec) const;

    /**
     * Per-batch backward: fills the layer's weight/bias gradients
     * (mean over examples is NOT applied here; callers divide once).
     *
     * @param d_y (batch x out) upstream gradient
     * @param d_x (batch x in) output: gradient wrt input (nullptr to
     *        skip input-gradient derivation for the first layer)
     *
     * DP-SGD(R)'s per-example reweighting is applied upstream, by
     * scaling the rows of the loss gradient, so plain backward here
     * yields the reweighted sums for every parameter including the
     * embedding tables.
     */
    void backward(const Tensor &d_y, Tensor *d_x,
                  bool skip_param_grads = false,
                  ExecContext &exec = ExecContext::serial());

    /**
     * Workspace backward: gradients derive from the caller's
     * @p x_cache and land in the caller's @p w_grad / @p b_grad (both
     * nullptr to skip parameter gradients). Const for the same reason
     * as forwardInto.
     */
    void backwardFrom(const Tensor &d_y, const Tensor &x_cache,
                      Tensor *d_x, Tensor *w_grad, Tensor *b_grad,
                      ExecContext &exec) const;

    /**
     * Ghost norms: out[e] += ||dW_e||_F^2 + ||db_e||^2 computed as
     * ||g_e||^2 * ||a_e||^2 + ||g_e||^2 without forming dW_e
     * (exact for linear layers; Denison et al.).
     *
     * Uses the cached input of the last forward.
     *
     * @param d_y (batch x out) upstream gradient
     * @param out accumulator, length batch
     */
    void accumulateGhostNormSq(const Tensor &d_y,
                               std::vector<double> &out) const;

    /** Workspace ghost norms: reads the caller's @p x_cache. */
    void accumulateGhostNormSqFrom(const Tensor &d_y,
                                   const Tensor &x_cache,
                                   std::vector<double> &out) const;

    /**
     * Materialized per-example gradients (DP-SGD(B) path):
     * dW_e = g_e (x) a_e, db_e = g_e.
     *
     * @param d_y (batch x out) upstream gradient
     * @param w_grads output (batch x (out*in))
     * @param b_grads output (batch x out)
     */
    void perExampleGrads(const Tensor &d_y, Tensor &w_grads,
                         Tensor &b_grads,
                         ExecContext &exec = ExecContext::serial()) const;

    /** Workspace per-example grads: reads the caller's @p x_cache. */
    void perExampleGradsFrom(const Tensor &d_y, const Tensor &x_cache,
                             Tensor &w_grads, Tensor &b_grads,
                             ExecContext &exec) const;

    /** w = decay*w - lr*w_grad; b = decay*b - lr*b_grad. */
    void apply(float lr, float decay = 1.0f);

    Tensor &weightGrad() { return w_grad_; }
    Tensor &biasGrad() { return b_grad_; }
    const Tensor &weightGrad() const { return w_grad_; }
    const Tensor &biasGrad() const { return b_grad_; }

    Tensor &weight() { return w_; }
    const Tensor &weight() const { return w_; }
    Tensor &bias() { return b_; }
    const Tensor &bias() const { return b_; }

    /** @return cached input of the last forward. */
    const Tensor &input() const { return x_cache_; }

    std::size_t inDim() const { return in_; }
    std::size_t outDim() const { return out_; }

    /** @return number of trainable parameters. */
    std::size_t paramCount() const { return in_ * out_ + out_; }

  private:
    std::size_t in_;
    std::size_t out_;
    Tensor w_;       // (out x in)
    Tensor b_;       // (1 x out)
    Tensor w_grad_;  // (out x in)
    Tensor b_grad_;  // (1 x out)
    Tensor x_cache_; // (batch x in)
};

/** MLP: alternating LinearLayer and ReLU (no activation after last). */
class Mlp
{
  public:
    /**
     * @param dims layer widths, e.g. {13, 512, 256, 128}
     * @param seed weight-init seed
     */
    Mlp(const std::vector<std::size_t> &dims, std::uint64_t seed);

    /** Forward through all layers; caches activations. */
    void forward(const Tensor &x, Tensor &y,
                 ExecContext &exec = ExecContext::serial());

    /**
     * Workspace forward: activations cache into @p ws instead of the
     * private workspace. Const -- several lot shards may run
     * concurrently, each with its own workspace, against the shared
     * weights.
     */
    void forward(const Tensor &x, Tensor &y, MlpWorkspace &ws,
                 ExecContext &exec) const;

    /**
     * Backward through all layers, filling per-layer batch gradients.
     *
     * @param d_y upstream gradient of the MLP output
     * @param d_x gradient wrt the MLP input (nullptr to skip)
     * @param ghost_norm_sq when non-null, each layer accumulates its
     *        per-example squared gradient norms into it (DP-SGD(F))
     */
    void backward(const Tensor &d_y, Tensor *d_x,
                  std::vector<double> *ghost_norm_sq = nullptr,
                  bool skip_param_grads = false,
                  ExecContext &exec = ExecContext::serial());

    /**
     * Workspace backward writing the LAYERS' own gradient tensors:
     * consumes the caches @p ws holds from the matching workspace
     * forward (the DlrmModel's classic path runs its MLPs through an
     * explicit workspace).
     */
    void backward(const Tensor &d_y, Tensor *d_x,
                  std::vector<double> *ghost_norm_sq,
                  bool skip_param_grads, MlpWorkspace &ws,
                  ExecContext &exec);

    /**
     * Workspace backward for concurrent lot shards: parameter-gradient
     * sums land in @p sums (per-layer caller-owned tensors; may be
     * nullptr only when skip_param_grads). The layers' own gradient
     * tensors are not touched, so concurrent shard backwards never
     * race.
     */
    void backward(const Tensor &d_y, Tensor *d_x,
                  std::vector<double> *ghost_norm_sq,
                  bool skip_param_grads, MlpWorkspace &ws,
                  MlpGradSums *sums, ExecContext &exec) const;

    /**
     * DP-SGD(R)'s first pass: walk the layers, *materialize* each
     * layer's per-example gradients into a reusable scratch pair just
     * long enough to accumulate per-example squared norms, then discard
     * (Lee & Kifer). Batch parameter gradients are not produced.
     *
     * @param d_y upstream gradient of the MLP output
     * @param d_x gradient wrt the MLP input (nullptr to skip)
     * @param norm_sq accumulator, length batch
     */
    void backwardNormsOnly(const Tensor &d_y, Tensor *d_x,
                           std::vector<double> &norm_sq,
                           ExecContext &exec = ExecContext::serial());

    /** Workspace variant of backwardNormsOnly (scratch lives in @p ws). */
    void backwardNormsOnly(const Tensor &d_y, Tensor *d_x,
                           std::vector<double> &norm_sq, MlpWorkspace &ws,
                           ExecContext &exec) const;

    /**
     * Backward that additionally materializes per-example gradients of
     * every layer (DP-SGD(B)). Batch gradients are not produced.
     */
    void backwardPerExample(const Tensor &d_y, Tensor *d_x,
                            PerExampleGrads &grads,
                            ExecContext &exec = ExecContext::serial());

    /** Workspace variant of backwardPerExample. */
    void backwardPerExample(const Tensor &d_y, Tensor *d_x,
                            PerExampleGrads &grads, MlpWorkspace &ws,
                            ExecContext &exec) const;

    /** SGD step on all layers (optional multiplicative decay). */
    void apply(float lr, float decay = 1.0f);

    /**
     * Overwrite every layer's weights and biases with @p other 's
     * (shapes must match). Gradients and caches are NOT copied -- this
     * is the snapshot-publication primitive, which only needs the
     * parameters a reader's forward pass consumes.
     */
    void copyWeightsFrom(const Mlp &other);

    /** @return the layers (DP engines iterate them). */
    std::vector<LinearLayer> &layers() { return layers_; }
    const std::vector<LinearLayer> &layers() const { return layers_; }

    std::size_t inDim() const { return dims_.front(); }
    std::size_t outDim() const { return dims_.back(); }

    /** @return total trainable parameters. */
    std::size_t paramCount() const;

  private:
    /** Size @p ws 's per-layer vectors to this stack (idempotent). */
    void ensureWorkspace(MlpWorkspace &ws) const;

    /**
     * Shared backward skeleton: walks layers in reverse, applying ReLU
     * masks, invoking @p layer_hook (per-batch or per-example gradient
     * derivation) for each layer.
     */
    template <typename LayerHook>
    void backwardImpl(const Tensor &d_y, Tensor *d_x, MlpWorkspace &ws,
                      LayerHook &&hook) const;

    std::vector<std::size_t> dims_;
    std::vector<LinearLayer> layers_;
    // Workspace backing the classic (workspace-less) entry points.
    // Persistent so backwardNormsOnly's per-example scratch avoids a
    // ~1 GB realloc + page-fault storm per iteration at batch 2048.
    MlpWorkspace ws_;
};

} // namespace lazydp

#endif // LAZYDP_NN_MLP_H
