/**
 * @file
 * DLRM dot-product feature interaction.
 *
 * Takes the bottom-MLP output plus the pooled embedding of every table
 * (all dimension d) and emits the bottom-MLP output concatenated with
 * all pairwise dot products between the (numTables + 1) feature vectors
 * (Naumov et al., 2019).
 */

#ifndef LAZYDP_NN_INTERACTION_H
#define LAZYDP_NN_INTERACTION_H

#include <vector>

#include "common/thread_pool.h"
#include "tensor/tensor.h"

namespace lazydp {

/** Pairwise-dot feature interaction with cached inputs for backward. */
class DotInteraction
{
  public:
    /**
     * @param num_inputs number of d-dimensional feature vectors per
     *        example (1 bottom-MLP output + numTables pooled embeddings)
     * @param dim common feature dimension d
     */
    DotInteraction(std::size_t num_inputs, std::size_t dim);

    /** @return output width: d + num_inputs*(num_inputs-1)/2. */
    std::size_t outputDim() const;

    /**
     * Forward.
     *
     * @param inputs num_inputs tensors, each (batch x dim); inputs[0]
     *        must be the bottom-MLP output (it is passed through)
     * @param out (batch x outputDim()) result
     */
    void forward(const std::vector<const Tensor *> &inputs, Tensor &out,
                 ExecContext &exec = ExecContext::serial());

    /**
     * Workspace forward: the flattened input cache lands in the
     * caller's @p cache instead of the member -- const, so concurrent
     * lot shards can each interact with their own workspace.
     */
    void forwardInto(const std::vector<const Tensor *> &inputs,
                     Tensor &out, Tensor &cache, ExecContext &exec) const;

    /**
     * Backward.
     *
     * @param d_out (batch x outputDim()) upstream gradient
     * @param d_inputs num_inputs tensors (batch x dim), overwritten
     *        with the gradient wrt each input
     */
    void backward(const Tensor &d_out,
                  const std::vector<Tensor *> &d_inputs,
                  ExecContext &exec = ExecContext::serial()) const;

    /** Workspace backward: reads the caller's @p cache. */
    void backwardFrom(const Tensor &d_out,
                      const std::vector<Tensor *> &d_inputs,
                      const Tensor &cache, ExecContext &exec) const;

    std::size_t numInputs() const { return numInputs_; }
    std::size_t dim() const { return dim_; }

  private:
    std::size_t numInputs_;
    std::size_t dim_;
    // Cached forward inputs, flattened to (batch x num_inputs*dim).
    Tensor cache_;
};

} // namespace lazydp

#endif // LAZYDP_NN_INTERACTION_H
