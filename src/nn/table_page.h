/**
 * @file
 * TablePage: one refcount-shared block of embedding rows -- the unit
 * of copy-on-write sharing between consecutive model snapshots.
 *
 * A delta snapshot's embedding table is a vector of
 * shared_ptr<const TablePage>; pages whose rows were untouched since
 * the previous published version are the SAME TablePage object in both
 * snapshots (pointer-identical, refcount-shared), only dirty pages are
 * re-materialized. A page is immutable from the moment its snapshot is
 * published until its last owner releases it.
 *
 * Two allocation backends:
 *  - aligned heap (default): 64-byte aligned for the SIMD kernels.
 *  - mmap (use_mmap): OS-page-aligned so the page can be SEALED
 *    read-only via mprotect after filling. With sealing on, any
 *    torn-write bug (a writer touching a published snapshot) becomes
 *    an immediate hard fault instead of silent serving corruption --
 *    the "application read-only memory" hardening mode.
 */

#ifndef LAZYDP_NN_TABLE_PAGE_H
#define LAZYDP_NN_TABLE_PAGE_H

#include <cstddef>

namespace lazydp {

/** One shareable, optionally sealable block of floats. */
class TablePage
{
  public:
    /**
     * @param floats capacity in floats (fully allocated up front)
     * @param use_mmap back with mmap so seal()/unseal() work; silently
     *        falls back to the heap on platforms without mmap
     */
    TablePage(std::size_t floats, bool use_mmap);
    ~TablePage();

    TablePage(const TablePage &) = delete;
    TablePage &operator=(const TablePage &) = delete;

    float *data() { return data_; }
    const float *data() const { return data_; }
    std::size_t floats() const { return floats_; }

    /** @return true when mmap-backed (seal/unseal are effective). */
    bool mmapped() const { return mmapped_; }

    /** @return true while the page is mprotect'ed read-only. */
    bool sealed() const { return sealed_; }

    /** mprotect the page read-only. No-op unless mmapped. */
    void seal();

    /** Make the page writable again (recycling refill). No-op unless
     * mmapped. */
    void unseal();

  private:
    float *data_ = nullptr;
    std::size_t floats_ = 0;
    std::size_t mapBytes_ = 0; //!< mmap length (0 = heap allocation)
    bool mmapped_ = false;
    bool sealed_ = false;
};

} // namespace lazydp

#endif // LAZYDP_NN_TABLE_PAGE_H
