#include "nn/dlrm.h"

#include <unordered_map>

#include "common/macros.h"
#include "tensor/simd_kernels.h"

namespace lazydp {

DlrmModel::DlrmModel(const ModelConfig &config, std::uint64_t seed)
    : config_(config),
      bottom_(config.bottomDims, seed),
      interaction_(config.numTables + 1, config.embedDim),
      top_(config.fullTopDims(), seed + 0x709ull)
{
    config_.validate();
    tables_.reserve(config_.numTables);
    for (std::size_t t = 0; t < config_.numTables; ++t) {
        tables_.emplace_back(config_.rowsForTable(t), config_.embedDim);
        tables_.back().initUniform(seed + 0xE000 + t);
    }
    embOut_.resize(config_.numTables);
    dEmbOut_.resize(config_.numTables);
}

void
DlrmModel::forward(const MiniBatch &mb, Tensor &logits,
                   ExecContext &exec)
{
    LAZYDP_ASSERT(mb.numTables == config_.numTables,
                  "batch table count != model");
    LAZYDP_ASSERT(mb.dense.cols() == config_.numDense,
                  "batch dense width != model");
    const std::size_t batch = mb.batchSize;
    lastBatch_ = batch;

    if (bottomOut_.rows() != batch ||
        bottomOut_.cols() != config_.embedDim) {
        bottomOut_.resize(batch, config_.embedDim);
    }
    bottom_.forward(mb.dense, bottomOut_, exec);

    for (std::size_t t = 0; t < config_.numTables; ++t) {
        Tensor &out = embOut_[t];
        if (out.rows() != batch || out.cols() != config_.embedDim)
            out.resize(batch, config_.embedDim);
        tables_[t].forward(mb.tableIndices(t), batch, mb.pooling, out);
    }

    if (interOut_.rows() != batch ||
        interOut_.cols() != interaction_.outputDim()) {
        interOut_.resize(batch, interaction_.outputDim());
    }
    std::vector<const Tensor *> inputs;
    inputs.reserve(config_.numTables + 1);
    inputs.push_back(&bottomOut_);
    for (auto &e : embOut_)
        inputs.push_back(&e);
    interaction_.forward(inputs, interOut_, exec);

    top_.forward(interOut_, logits, exec);
}

namespace {

/** Prepare backward scratch shapes shared by both backward variants. */
void
prepareGradBuffers(std::size_t batch, std::size_t inter_dim,
                   std::size_t embed_dim, std::size_t num_tables,
                   Tensor &d_inter, Tensor &d_bottom,
                   std::vector<Tensor> &d_emb)
{
    if (d_inter.rows() != batch || d_inter.cols() != inter_dim)
        d_inter.resize(batch, inter_dim);
    if (d_bottom.rows() != batch || d_bottom.cols() != embed_dim)
        d_bottom.resize(batch, embed_dim);
    for (std::size_t t = 0; t < num_tables; ++t) {
        if (d_emb[t].rows() != batch || d_emb[t].cols() != embed_dim)
            d_emb[t].resize(batch, embed_dim);
    }
}

} // namespace

void
DlrmModel::backward(const Tensor &d_logits,
                    std::vector<double> *ghost_norm_sq,
                    bool skip_param_grads, ExecContext &exec)
{
    const std::size_t batch = d_logits.rows();
    LAZYDP_ASSERT(batch == lastBatch_, "backward batch != forward batch");
    prepareGradBuffers(batch, interaction_.outputDim(), config_.embedDim,
                       config_.numTables, dInterOut_, dBottomOut_,
                       dEmbOut_);

    top_.backward(d_logits, &dInterOut_, ghost_norm_sq, skip_param_grads,
                  exec);

    std::vector<Tensor *> d_inputs;
    d_inputs.reserve(config_.numTables + 1);
    d_inputs.push_back(&dBottomOut_);
    for (auto &t : dEmbOut_)
        d_inputs.push_back(&t);
    interaction_.backward(dInterOut_, d_inputs, exec);

    bottom_.backward(dBottomOut_, nullptr, ghost_norm_sq,
                     skip_param_grads, exec);
}

void
DlrmModel::backwardNormsOnly(const Tensor &d_logits,
                             std::vector<double> &norm_sq,
                             ExecContext &exec)
{
    const std::size_t batch = d_logits.rows();
    LAZYDP_ASSERT(batch == lastBatch_, "backward batch != forward batch");
    prepareGradBuffers(batch, interaction_.outputDim(), config_.embedDim,
                       config_.numTables, dInterOut_, dBottomOut_,
                       dEmbOut_);

    top_.backwardNormsOnly(d_logits, &dInterOut_, norm_sq, exec);

    std::vector<Tensor *> d_inputs;
    d_inputs.reserve(config_.numTables + 1);
    d_inputs.push_back(&dBottomOut_);
    for (auto &t : dEmbOut_)
        d_inputs.push_back(&t);
    interaction_.backward(dInterOut_, d_inputs, exec);

    bottom_.backwardNormsOnly(dBottomOut_, nullptr, norm_sq, exec);
}

void
DlrmModel::backwardPerExample(const Tensor &d_logits,
                              PerExampleGrads &top_grads,
                              PerExampleGrads &bottom_grads,
                              ExecContext &exec)
{
    const std::size_t batch = d_logits.rows();
    LAZYDP_ASSERT(batch == lastBatch_, "backward batch != forward batch");
    prepareGradBuffers(batch, interaction_.outputDim(), config_.embedDim,
                       config_.numTables, dInterOut_, dBottomOut_,
                       dEmbOut_);

    top_.backwardPerExample(d_logits, &dInterOut_, top_grads, exec);

    std::vector<Tensor *> d_inputs;
    d_inputs.reserve(config_.numTables + 1);
    d_inputs.push_back(&dBottomOut_);
    for (auto &t : dEmbOut_)
        d_inputs.push_back(&t);
    interaction_.backward(dInterOut_, d_inputs, exec);

    bottom_.backwardPerExample(dBottomOut_, nullptr, bottom_grads, exec);
}

void
DlrmModel::accumulateEmbeddingGhostNormSq(const MiniBatch &mb,
                                          std::vector<double> &out) const
{
    const std::size_t batch = mb.batchSize;
    LAZYDP_ASSERT(out.size() == batch, "ghost-norm accumulator length");

    // For an example whose pooled gradient is g_e, a row gathered with
    // multiplicity m receives gradient m * g_e; the squared norm of the
    // example's full table gradient is therefore
    // (sum over unique rows m^2) * ||g_e||^2.
    std::unordered_map<std::uint32_t, std::uint32_t> mult;
    for (std::size_t t = 0; t < config_.numTables; ++t) {
        const Tensor &d_out = dEmbOut_[t];
        for (std::size_t e = 0; e < batch; ++e) {
            auto idx = mb.exampleIndices(t, e);
            double m2_sum;
            if (mb.pooling == 1) {
                m2_sum = 1.0;
            } else {
                mult.clear();
                for (auto row : idx)
                    ++mult[row];
                m2_sum = 0.0;
                for (const auto &[row, m] : mult)
                    m2_sum += static_cast<double>(m) *
                              static_cast<double>(m);
            }
            const double g2 = simd::squaredNorm(
                d_out.data() + e * config_.embedDim, config_.embedDim);
            out[e] += m2_sum * g2;
        }
    }
}

const Tensor &
DlrmModel::embOutGrad(std::size_t t) const
{
    LAZYDP_ASSERT(t < dEmbOut_.size(), "table index out of range");
    return dEmbOut_[t];
}

Tensor &
DlrmModel::embOutGradMutable(std::size_t t)
{
    LAZYDP_ASSERT(t < dEmbOut_.size(), "table index out of range");
    return dEmbOut_[t];
}

void
DlrmModel::embeddingBackward(const MiniBatch &mb, std::size_t t,
                             SparseGrad &grad) const
{
    tables_[t].backward(mb.tableIndices(t), mb.batchSize, mb.pooling,
                        dEmbOut_[t], grad);
}

void
DlrmModel::applyMlps(float lr)
{
    bottom_.apply(lr);
    top_.apply(lr);
}

std::size_t
DlrmModel::mlpParamCount() const
{
    return bottom_.paramCount() + top_.paramCount();
}

std::uint64_t
DlrmModel::tableBytes() const
{
    std::uint64_t total = 0;
    for (const auto &t : tables_)
        total += t.bytes();
    return total;
}

} // namespace lazydp
