#include "nn/dlrm.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "tensor/simd_kernels.h"

namespace lazydp {

DlrmModel::DlrmModel(const ModelConfig &config, std::uint64_t seed)
    : config_(config),
      bottom_(config.bottomDims, seed),
      interaction_(config.numTables + 1, config.embedDim),
      top_(config.fullTopDims(), seed + 0x709ull)
{
    config_.validate();
    tables_.reserve(config_.numTables);
    for (std::size_t t = 0; t < config_.numTables; ++t) {
        tables_.emplace_back(config_.rowsForTable(t), config_.embedDim);
        tables_.back().initUniform(seed + 0xE000 + t);
    }
}

DlrmModel::DlrmModel(const ModelConfig &config, UninitializedTables)
    : config_(config),
      bottom_(config.bottomDims, 0),
      interaction_(config.numTables + 1, config.embedDim),
      top_(config.fullTopDims(), 0x709ull)
{
    config_.validate();
    tables_.reserve(config_.numTables);
    for (std::size_t t = 0; t < config_.numTables; ++t)
        tables_.emplace_back(config_.rowsForTable(t), config_.embedDim);
}

std::string
DlrmModel::tieredColdPath(const std::string &dir, std::size_t t)
{
    return dir + "/lazydp_table" + std::to_string(t) + ".cold";
}

DlrmModel::DlrmModel(const ModelConfig &config, std::uint64_t seed,
                     const TieredModelOptions &tier)
    : config_(config),
      bottom_(config.bottomDims, seed),
      interaction_(config.numTables + 1, config.embedDim),
      top_(config.fullTopDims(), seed + 0x709ull)
{
    config_.validate();
    LAZYDP_ASSERT(!tier.coldDir.empty(),
                  "tiered model needs a cold directory");
    std::uint64_t total_bytes = 0;
    for (std::size_t t = 0; t < config_.numTables; ++t) {
        total_bytes += config_.rowsForTable(t) *
                       static_cast<std::uint64_t>(config_.embedDim) *
                       sizeof(float);
    }
    tables_.reserve(config_.numTables);
    for (std::size_t t = 0; t < config_.numTables; ++t) {
        const std::uint64_t tbl_bytes =
            config_.rowsForTable(t) *
            static_cast<std::uint64_t>(config_.embedDim) * sizeof(float);
        TieredOptions opts;
        // Hot budget split proportionally to table size so every table
        // sees the same hot fraction regardless of the size mix.
        opts.hotBytes = total_bytes == 0
                            ? 0
                            : static_cast<std::uint64_t>(
                                  static_cast<double>(tier.hotBytes) *
                                  static_cast<double>(tbl_bytes) /
                                  static_cast<double>(total_bytes));
        opts.coldPath = tieredColdPath(tier.coldDir, t);
        opts.pageRows = tier.pageRows;
        opts.prefetch = tier.prefetch;
        opts.reuseFile = tier.reuseFiles;
        opts.keepFile = tier.keepFiles;
        tables_.emplace_back(config_.rowsForTable(t), config_.embedDim,
                             opts);
        // Identical init stream to the dense ctor; on reuse the cold
        // files already hold the (flushed) weights.
        if (!tier.reuseFiles)
            tables_.back().initUniform(seed + 0xE000 + t);
    }
}

void
DlrmModel::drainTierWarm() const
{
    for (const auto &t : tables_) {
        if (t.tiered())
            t.tier().joinWarm();
    }
}

void
DlrmModel::flushTiers()
{
    for (auto &t : tables_) {
        if (t.tiered())
            t.tier().flush();
    }
}

TierStats
DlrmModel::tierStats() const
{
    TierStats total;
    for (const auto &t : tables_) {
        if (t.tiered())
            total += t.tier().stats();
    }
    return total;
}

DlrmModel::DlrmModel(const ModelConfig &config, PagedTables)
    : config_(config),
      bottom_(config.bottomDims, 0),
      interaction_(config.numTables + 1, config.embedDim),
      top_(config.fullTopDims(), 0x709ull)
{
    config_.validate();
    tables_.reserve(config_.numTables);
    for (std::size_t t = 0; t < config_.numTables; ++t)
        tables_.emplace_back(config_.rowsForTable(t), config_.embedDim,
                             EmbeddingTable::Paged{});
}

void
DlrmModel::prepareWorkspace(DlrmWorkspace &ws, std::size_t batch) const
{
    if (ws.embOut.size() != config_.numTables) {
        ws.embOut.resize(config_.numTables);
        ws.dEmbOut.resize(config_.numTables);
    }
    ws.lastBatch = batch;
}

void
DlrmModel::forward(const MiniBatch &mb, Tensor &logits, ExecContext &exec)
{
    forward(mb, logits, ws_, exec);
}

void
DlrmModel::forward(const MiniBatch &mb, Tensor &logits, DlrmWorkspace &ws,
                   ExecContext &exec) const
{
    LAZYDP_ASSERT(mb.numTables == config_.numTables,
                  "batch table count != model");
    LAZYDP_ASSERT(mb.dense.cols() == config_.numDense,
                  "batch dense width != model");
    const std::size_t batch = mb.batchSize;
    prepareWorkspace(ws, batch);

    if (ws.bottomOut.rows() != batch ||
        ws.bottomOut.cols() != config_.embedDim) {
        ws.bottomOut.resize(batch, config_.embedDim);
    }
    bottom_.forward(mb.dense, ws.bottomOut, ws.bottom, exec);

    for (std::size_t t = 0; t < config_.numTables; ++t) {
        Tensor &out = ws.embOut[t];
        if (out.rows() != batch || out.cols() != config_.embedDim)
            out.resize(batch, config_.embedDim);
        tables_[t].forward(mb.tableIndices(t), batch, mb.pooling, out);
    }

    if (ws.interOut.rows() != batch ||
        ws.interOut.cols() != interaction_.outputDim()) {
        ws.interOut.resize(batch, interaction_.outputDim());
    }
    std::vector<const Tensor *> inputs;
    inputs.reserve(config_.numTables + 1);
    inputs.push_back(&ws.bottomOut);
    for (auto &e : ws.embOut)
        inputs.push_back(&e);
    interaction_.forwardInto(inputs, ws.interOut, ws.interCache, exec);

    top_.forward(ws.interOut, logits, ws.top, exec);
}

namespace {

/** Prepare backward scratch shapes shared by both backward variants. */
void
prepareGradBuffers(std::size_t batch, std::size_t inter_dim,
                   std::size_t embed_dim, std::size_t num_tables,
                   Tensor &d_inter, Tensor &d_bottom,
                   std::vector<Tensor> &d_emb)
{
    if (d_inter.rows() != batch || d_inter.cols() != inter_dim)
        d_inter.resize(batch, inter_dim);
    if (d_bottom.rows() != batch || d_bottom.cols() != embed_dim)
        d_bottom.resize(batch, embed_dim);
    for (std::size_t t = 0; t < num_tables; ++t) {
        if (d_emb[t].rows() != batch || d_emb[t].cols() != embed_dim)
            d_emb[t].resize(batch, embed_dim);
    }
}

} // namespace

void
DlrmModel::backward(const Tensor &d_logits,
                    std::vector<double> *ghost_norm_sq,
                    bool skip_param_grads, ExecContext &exec)
{
    // Classic path: caches from the private workspace, gradients into
    // the layers' own tensors.
    const std::size_t batch = d_logits.rows();
    LAZYDP_ASSERT(batch == ws_.lastBatch,
                  "backward batch != forward batch");
    prepareGradBuffers(batch, interaction_.outputDim(), config_.embedDim,
                       config_.numTables, ws_.dInterOut, ws_.dBottomOut,
                       ws_.dEmbOut);

    top_.backward(d_logits, &ws_.dInterOut, ghost_norm_sq,
                  skip_param_grads, ws_.top, exec);

    std::vector<Tensor *> d_inputs;
    d_inputs.reserve(config_.numTables + 1);
    d_inputs.push_back(&ws_.dBottomOut);
    for (auto &t : ws_.dEmbOut)
        d_inputs.push_back(&t);
    interaction_.backwardFrom(ws_.dInterOut, d_inputs, ws_.interCache,
                              exec);

    bottom_.backward(ws_.dBottomOut, nullptr, ghost_norm_sq,
                     skip_param_grads, ws_.bottom, exec);
}

void
DlrmModel::backward(const Tensor &d_logits,
                    std::vector<double> *ghost_norm_sq,
                    bool skip_param_grads, DlrmWorkspace &ws,
                    DlrmGradSums *sums, ExecContext &exec) const
{
    const std::size_t batch = d_logits.rows();
    LAZYDP_ASSERT(batch == ws.lastBatch,
                  "backward batch != forward batch");
    LAZYDP_ASSERT(skip_param_grads || sums != nullptr,
                  "shard backward needs caller-owned grad sums");
    prepareGradBuffers(batch, interaction_.outputDim(), config_.embedDim,
                       config_.numTables, ws.dInterOut, ws.dBottomOut,
                       ws.dEmbOut);

    top_.backward(d_logits, &ws.dInterOut, ghost_norm_sq,
                  skip_param_grads, ws.top,
                  sums != nullptr ? &sums->top : nullptr, exec);

    std::vector<Tensor *> d_inputs;
    d_inputs.reserve(config_.numTables + 1);
    d_inputs.push_back(&ws.dBottomOut);
    for (auto &t : ws.dEmbOut)
        d_inputs.push_back(&t);
    interaction_.backwardFrom(ws.dInterOut, d_inputs, ws.interCache,
                              exec);

    bottom_.backward(ws.dBottomOut, nullptr, ghost_norm_sq,
                     skip_param_grads, ws.bottom,
                     sums != nullptr ? &sums->bottom : nullptr, exec);
}

void
DlrmModel::backwardNormsOnly(const Tensor &d_logits,
                             std::vector<double> &norm_sq,
                             ExecContext &exec)
{
    backwardNormsOnly(d_logits, norm_sq, ws_, exec);
}

void
DlrmModel::backwardNormsOnly(const Tensor &d_logits,
                             std::vector<double> &norm_sq,
                             DlrmWorkspace &ws, ExecContext &exec) const
{
    const std::size_t batch = d_logits.rows();
    LAZYDP_ASSERT(batch == ws.lastBatch,
                  "backward batch != forward batch");
    prepareGradBuffers(batch, interaction_.outputDim(), config_.embedDim,
                       config_.numTables, ws.dInterOut, ws.dBottomOut,
                       ws.dEmbOut);

    top_.backwardNormsOnly(d_logits, &ws.dInterOut, norm_sq, ws.top,
                           exec);

    std::vector<Tensor *> d_inputs;
    d_inputs.reserve(config_.numTables + 1);
    d_inputs.push_back(&ws.dBottomOut);
    for (auto &t : ws.dEmbOut)
        d_inputs.push_back(&t);
    interaction_.backwardFrom(ws.dInterOut, d_inputs, ws.interCache,
                              exec);

    bottom_.backwardNormsOnly(ws.dBottomOut, nullptr, norm_sq, ws.bottom,
                              exec);
}

void
DlrmModel::backwardPerExample(const Tensor &d_logits,
                              PerExampleGrads &top_grads,
                              PerExampleGrads &bottom_grads,
                              ExecContext &exec)
{
    backwardPerExample(d_logits, top_grads, bottom_grads, ws_, exec);
}

void
DlrmModel::backwardPerExample(const Tensor &d_logits,
                              PerExampleGrads &top_grads,
                              PerExampleGrads &bottom_grads,
                              DlrmWorkspace &ws, ExecContext &exec) const
{
    const std::size_t batch = d_logits.rows();
    LAZYDP_ASSERT(batch == ws.lastBatch,
                  "backward batch != forward batch");
    prepareGradBuffers(batch, interaction_.outputDim(), config_.embedDim,
                       config_.numTables, ws.dInterOut, ws.dBottomOut,
                       ws.dEmbOut);

    top_.backwardPerExample(d_logits, &ws.dInterOut, top_grads, ws.top,
                            exec);

    std::vector<Tensor *> d_inputs;
    d_inputs.reserve(config_.numTables + 1);
    d_inputs.push_back(&ws.dBottomOut);
    for (auto &t : ws.dEmbOut)
        d_inputs.push_back(&t);
    interaction_.backwardFrom(ws.dInterOut, d_inputs, ws.interCache,
                              exec);

    bottom_.backwardPerExample(ws.dBottomOut, nullptr, bottom_grads,
                               ws.bottom, exec);
}

void
DlrmModel::accumulateEmbeddingGhostNormSq(const MiniBatch &mb,
                                          std::vector<double> &out) const
{
    accumulateEmbeddingGhostNormSq(mb, out, ws_);
}

void
DlrmModel::accumulateEmbeddingGhostNormSq(const MiniBatch &mb,
                                          std::vector<double> &out,
                                          const DlrmWorkspace &ws) const
{
    const std::size_t batch = mb.batchSize;
    LAZYDP_ASSERT(out.size() == batch, "ghost-norm accumulator length");

    // For an example whose pooled gradient is g_e, a row gathered with
    // multiplicity m receives gradient m * g_e; the squared norm of the
    // example's full table gradient is therefore
    // (sum over unique rows m^2) * ||g_e||^2.
    std::unordered_map<std::uint32_t, std::uint32_t> mult;
    for (std::size_t t = 0; t < config_.numTables; ++t) {
        const Tensor &d_out = ws.dEmbOut[t];
        for (std::size_t e = 0; e < batch; ++e) {
            auto idx = mb.exampleIndices(t, e);
            double m2_sum;
            if (mb.pooling == 1) {
                m2_sum = 1.0;
            } else {
                mult.clear();
                for (auto row : idx)
                    ++mult[row];
                m2_sum = 0.0;
                for (const auto &[row, m] : mult)
                    m2_sum += static_cast<double>(m) *
                              static_cast<double>(m);
            }
            const double g2 = simd::squaredNorm(
                d_out.data() + e * config_.embedDim, config_.embedDim);
            out[e] += m2_sum * g2;
        }
    }
}

const Tensor &
DlrmModel::embOutGrad(std::size_t t) const
{
    LAZYDP_ASSERT(t < ws_.dEmbOut.size(), "table index out of range");
    return ws_.dEmbOut[t];
}

void
DlrmModel::embeddingBackward(const MiniBatch &mb, std::size_t t,
                             SparseGrad &grad) const
{
    embeddingBackwardFrom(mb, t, ws_.dEmbOut[t], grad);
}

void
DlrmModel::embeddingBackwardFrom(const MiniBatch &mb, std::size_t t,
                                 const Tensor &d_out,
                                 SparseGrad &grad) const
{
    tables_[t].backward(mb.tableIndices(t), mb.batchSize, mb.pooling,
                        d_out, grad);
}

void
DlrmModel::applyMlps(float lr)
{
    bottom_.apply(lr);
    top_.apply(lr);
}

void
DlrmModel::copyWeightsFrom(const DlrmModel &other)
{
    LAZYDP_ASSERT(tables_.size() == other.tables_.size(),
                  "copyWeightsFrom across different table counts");
    for (std::size_t t = 0; t < tables_.size(); ++t) {
        LAZYDP_ASSERT(tables_[t].rows() == other.tables_[t].rows() &&
                          tables_[t].dim() == other.tables_[t].dim(),
                      "copyWeightsFrom across different table shapes");
        if (!tables_[t].tiered() && !other.tables_[t].tiered()) {
            tables_[t].weights().copyFrom(other.tables_[t].weights());
            continue;
        }
        // A tiered table on either side: stream through a bounded
        // scratch chunk instead of materializing either table densely.
        const std::uint64_t rows = tables_[t].rows();
        const std::size_t dim = tables_[t].dim();
        const std::uint64_t chunk_rows =
            std::max<std::uint64_t>(1, (1u << 22) / dim); // ~16 MB
        std::vector<float> scratch(
            static_cast<std::size_t>(
                std::min<std::uint64_t>(rows, chunk_rows)) *
            dim);
        for (std::uint64_t lo = 0; lo < rows; lo += chunk_rows) {
            const std::uint64_t n =
                std::min<std::uint64_t>(chunk_rows, rows - lo);
            other.tables_[t].copyRowsOut(lo, n, scratch.data());
            tables_[t].copyRowsIn(lo, n, scratch.data());
        }
    }
    bottom_.copyWeightsFrom(other.bottom_);
    top_.copyWeightsFrom(other.top_);
}

void
DlrmModel::copyMlpWeightsFrom(const DlrmModel &other)
{
    bottom_.copyWeightsFrom(other.bottom_);
    top_.copyWeightsFrom(other.top_);
}

std::size_t
DlrmModel::mlpParamCount() const
{
    return bottom_.paramCount() + top_.paramCount();
}

std::uint64_t
DlrmModel::tableBytes() const
{
    std::uint64_t total = 0;
    for (const auto &t : tables_)
        total += t.bytes();
    return total;
}

} // namespace lazydp
