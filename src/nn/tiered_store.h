/**
 * @file
 * Out-of-core backing store for one embedding table: a DRAM hot tier of
 * page frames over a file-backed cold tier.
 *
 * Production DLRM tables run to hundreds of GB; the paper's headline
 * claim is that LazyDP's per-iteration work is proportional to the rows
 * a batch touches, NOT to table capacity. This store makes that claim
 * demonstrable past the DRAM budget: the full table lives in a
 * per-table data file (mmap'ed MAP_SHARED -- the COLD tier and the
 * durable authority for every non-resident page), while a bounded set
 * of heap TablePage frames (the HOT tier) holds the pages training is
 * actively touching.
 *
 * Residency is managed in user space at page granularity (pageRows
 * rows per page, the same unit the delta-snapshot machinery shares):
 *
 *  - ensureResident(rows): training-thread-only. Promotes every page
 *    covering @p rows into a frame (memcpy cold->frame), pinning it for
 *    the current call; frames are reclaimed with a CLOCK sweep that
 *    prefers clean victims and writes dirty victims back to the cold
 *    mapping first. This is the ONLY place page<->frame bindings
 *    change, so the page table needs no locking against the compute
 *    pool: engines call it between parallel phases.
 *  - warmAsync(rows): the lookahead prefetcher. Submits a task to a
 *    dedicated ThreadPool lane that READ-touches the cold bytes of the
 *    covered pages, faulting them into the OS page cache, so the
 *    promotion memcpy that follows on the training thread runs at DRAM
 *    speed instead of device speed. The warm task never mutates store
 *    state (it only sets per-page "warmed" flags, relaxed atomics);
 *    cold-region writes (eviction write-back, flush) exclude it through
 *    a small mutex, keeping the overlap race-free.
 *
 * Bit-identity contract: promotion and eviction are byte copies and
 * every update kernel runs the exact per-row/per-range arithmetic of
 * the all-DRAM path (see embedding.cc / dp/noise_ops.cc), so the
 * trained model is bit-identical to an all-DRAM run regardless of the
 * hot budget, eviction order, or prefetch setting. pageRows must be a
 * multiple of 8 so page boundaries land on the SIMD kernels' 8-wide
 * group boundaries (pageRows * dim % 8 == 0 for any dim).
 */

#ifndef LAZYDP_NN_TIERED_STORE_H
#define LAZYDP_NN_TIERED_STORE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "nn/table_page.h"

namespace lazydp {

/** Configuration of one TieredStore. */
struct TieredOptions
{
    /** DRAM budget for hot frames, in bytes (rounded down to whole
     * frames; at least one frame is always allocated). */
    std::uint64_t hotBytes = 0;

    /** Cold-tier data file backing the table. */
    std::string coldPath;

    /** Rows per page; must be a multiple of 8 (SIMD group tiling). */
    std::size_t pageRows = 256;

    /** Submit lookahead warm tasks (warmAsync); off = every promotion
     * faults synchronously on the training thread (worst case). */
    bool prefetch = true;

    /**
     * Re-open an existing cold file instead of creating a fresh one:
     * resident state starts empty and reads see the file's contents --
     * the crash-recovery path (the file is the durable authority for
     * everything flush()ed before the crash).
     */
    bool reuseFile = false;

    /** Keep the cold file on destruction (recovery / inspection). */
    bool keepFile = false;
};

/** Residency / traffic counters of one store (test + tool surface). */
struct TierStats
{
    std::uint64_t hits = 0;        //!< ensureResident: page already hot
    std::uint64_t promotions = 0;  //!< pages copied cold -> frame
    std::uint64_t warmedPromotions = 0; //!< promotions the prefetcher warmed
    std::uint64_t evictions = 0;   //!< frames reclaimed
    std::uint64_t writebacks = 0;  //!< dirty evictions (frame -> cold copy)
    std::uint64_t warmSubmits = 0; //!< warm tasks submitted
    std::uint64_t warmedPages = 0; //!< pages the warm tasks touched
    std::uint64_t overcommits = 0; //!< frames allocated past the budget

    TierStats &operator+=(const TierStats &o);

    /** hit fraction of ensureResident page requests (1.0 when idle). */
    double hitRate() const;
};

/** File-backed tiered page store; see file comment. */
class TieredStore
{
  public:
    TieredStore(std::uint64_t rows, std::size_t dim,
                const TieredOptions &options);
    ~TieredStore();

    TieredStore(const TieredStore &) = delete;
    TieredStore &operator=(const TieredStore &) = delete;

    std::uint64_t rows() const { return rows_; }
    std::size_t dim() const { return dim_; }
    std::size_t pageRows() const { return pageRows_; }
    std::size_t numPages() const { return numPages_; }
    std::size_t frameCount() const { return frames_.size(); }
    const std::string &coldPath() const { return options_.coldPath; }
    bool prefetchEnabled() const { return options_.prefetch; }

    /** @return current authority pointer of page @p p (frame if
     * resident, else the cold mapping). */
    const float *
    pagePtr(std::size_t p) const
    {
        return pagePtr_[p];
    }

    /** Const row access: never promotes, never marks. */
    const float *
    rowPtr(std::uint64_t r) const
    {
        const std::size_t p = static_cast<std::size_t>(r / pageRows_);
        return pagePtr_[p] + (r % pageRows_) * dim_;
    }

    /**
     * Mutable row access: marks the covering page dirty when resident
     * (a cold write lands in the authority directly and needs no mark).
     * Never promotes -- dense sweeps (finalize, eager streaming
     * updates) intentionally write THROUGH to the cold tier instead of
     * thrashing the hot tier.
     */
    float *
    rowPtrMut(std::uint64_t r)
    {
        const std::size_t p = static_cast<std::size_t>(r / pageRows_);
        if (frameOf_[p] != kNoFrame)
            dirty_[p].store(1, std::memory_order_relaxed);
        return pagePtr_[p] + (r % pageRows_) * dim_;
    }

    /** Mutable page access with the same dirty-marking contract. */
    float *
    pagePtrMut(std::size_t p)
    {
        if (frameOf_[p] != kNoFrame)
            dirty_[p].store(1, std::memory_order_relaxed);
        return pagePtr_[p];
    }

    /** @return true when page @p p is bound to a hot frame. */
    bool
    resident(std::size_t p) const
    {
        return frameOf_[p] != kNoFrame;
    }

    /**
     * Promote every page covering @p rows into the hot tier (training
     * thread only; must not run concurrently with pool work that
     * touches this store). Rows may repeat and need not be sorted.
     */
    void ensureResident(std::span<const std::uint32_t> rows);

    /**
     * Submit a lookahead warm task for @p rows on the dedicated
     * prefetch lane (no-op when prefetch is off or @p pool is null).
     * Safe to call from the pipeline lane; the row list is copied.
     */
    void warmAsync(ThreadPool *pool, std::vector<std::uint32_t> rows);

    /** Block until the most recently submitted warm task finished. */
    void joinWarm() const;

    /**
     * Write every dirty resident page back to the cold mapping and
     * msync it: after flush() returns, the cold FILE holds the complete
     * current table (the crash-recovery guarantee checkpoint saves rely
     * on). Pages stay resident; joins any in-flight warm task first.
     */
    void flush();

    /** Copy rows [row, row+n) into @p dst (no promotion, no marks). */
    void copyRowsOut(std::uint64_t row, std::uint64_t n,
                     float *dst) const;

    /** Overwrite rows [row, row+n) from @p src (write-through; marks
     * resident pages dirty). */
    void copyRowsIn(std::uint64_t row, std::uint64_t n, const float *src);

    TierStats stats() const;

  private:
    static constexpr std::uint32_t kNoFrame = 0xFFFFFFFFu;
    static constexpr std::size_t kNoPage =
        static_cast<std::size_t>(-1);

    /** Reclaim (or allocate) a frame for promotion; CLOCK sweep. */
    std::size_t acquireFrame(std::uint64_t epoch);

    /** Copy frame contents of resident page @p p back to the cold
     * mapping (caller holds no lock; takes coldWriteMu_). */
    void writeBack(std::size_t p);

    /** Warm-task body: read-touch the cold bytes of @p rows' pages. */
    void warmRowsBody(const std::vector<std::uint32_t> &rows);

    std::uint64_t rows_;
    std::size_t dim_;
    std::size_t pageRows_;
    std::size_t pageFloats_; //!< pageRows_ * dim_
    std::size_t numPages_;
    TieredOptions options_;

    int fd_ = -1;
    float *cold_ = nullptr;   //!< MAP_SHARED mapping of the data file
    std::size_t mapBytes_ = 0;

    std::vector<std::unique_ptr<TablePage>> frames_; //!< hot tier
    std::vector<std::size_t> framePage_; //!< frame -> page (kNoPage=free)
    std::vector<std::size_t> freeFrames_;
    std::size_t maxFrames_ = 0; //!< budgeted frame count

    std::vector<std::uint32_t> frameOf_; //!< page -> frame (kNoFrame)
    std::vector<float *> pagePtr_;       //!< page -> authority pointer
    std::unique_ptr<std::atomic<std::uint8_t>[]> dirty_;  //!< per page
    std::unique_ptr<std::atomic<std::uint8_t>[]> warmed_; //!< per page
    std::vector<std::uint8_t> refBit_;      //!< CLOCK reference bits
    std::vector<std::uint64_t> pinEpoch_;   //!< per-page pin stamp
    std::uint64_t epoch_ = 0;
    std::size_t clockHand_ = 0;

    /** Excludes the warm task's cold reads from eviction/flush writes
     * to the cold mapping (the only writer/reader overlap possible). */
    mutable std::mutex coldWriteMu_;

    /** Guards warmHandle_ (written from the pipeline lane). */
    mutable std::mutex warmMu_;
    TaskHandle warmHandle_;

    // Counters. Atomics because warm tasks (prefetch lane) and warm
    // submissions (pipeline lane) bump theirs concurrently with the
    // training thread's; all relaxed, read via stats() after joins.
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> promotions_{0};
    mutable std::atomic<std::uint64_t> warmedPromotions_{0};
    mutable std::atomic<std::uint64_t> evictions_{0};
    mutable std::atomic<std::uint64_t> writebacks_{0};
    mutable std::atomic<std::uint64_t> warmSubmits_{0};
    mutable std::atomic<std::uint64_t> warmedPages_{0};
    mutable std::atomic<std::uint64_t> overcommits_{0};
};

} // namespace lazydp

#endif // LAZYDP_NN_TIERED_STORE_H
