/**
 * @file
 * TieredStore implementation. See tiered_store.h for the design and
 * the concurrency contract; the short version is that every structural
 * mutation (page<->frame binding, clock state) happens on the training
 * thread inside ensureResident, the warm task only reads the cold
 * mapping and sets relaxed atomic flags, and coldWriteMu_ is the single
 * point of exclusion between warm reads and cold write-back.
 */

#include "nn/tiered_store.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lazydp {

namespace {

/** Registry mirrors of the per-table TierStats counters (global and
 *  additive across tables, like tierStats() itself). */
struct TierMetrics
{
    obs::MetricId hits;
    obs::MetricId promotions;
    obs::MetricId evictions;
    obs::MetricId writebacks;
    obs::MetricId warmedPages;
    obs::MetricId warmSubmits;
};

const TierMetrics &
tierMetrics()
{
    static const TierMetrics ids = {
        obs::internMetric("tier.hits", obs::MetricKind::Counter),
        obs::internMetric("tier.promotions",
                          obs::MetricKind::Counter),
        obs::internMetric("tier.evictions",
                          obs::MetricKind::Counter),
        obs::internMetric("tier.writebacks",
                          obs::MetricKind::Counter),
        obs::internMetric("tier.warmed_pages",
                          obs::MetricKind::Counter),
        obs::internMetric("tier.warm_submits",
                          obs::MetricKind::Counter),
    };
    return ids;
}

} // namespace

TierStats &
TierStats::operator+=(const TierStats &o)
{
    hits += o.hits;
    promotions += o.promotions;
    warmedPromotions += o.warmedPromotions;
    evictions += o.evictions;
    writebacks += o.writebacks;
    warmSubmits += o.warmSubmits;
    warmedPages += o.warmedPages;
    overcommits += o.overcommits;
    return *this;
}

double
TierStats::hitRate() const
{
    const std::uint64_t total = hits + promotions;
    if (total == 0)
        return 1.0;
    return static_cast<double>(hits) / static_cast<double>(total);
}

TieredStore::TieredStore(std::uint64_t rows, std::size_t dim,
                         const TieredOptions &options)
    : rows_(rows), dim_(dim), pageRows_(options.pageRows),
      pageFloats_(options.pageRows * dim), options_(options)
{
    if (rows_ == 0 || dim_ == 0)
        fatal("tiered table must have rows > 0 and dim > 0");
    if (pageRows_ == 0 || pageRows_ % 8 != 0)
        fatal("tiered pageRows must be a positive multiple of 8, got ",
              pageRows_);
    if (options_.coldPath.empty())
        fatal("tiered table needs a cold-tier file path (--cold-path)");

    numPages_ = static_cast<std::size_t>(
        (rows_ + pageRows_ - 1) / pageRows_);
    // The mapping is padded to whole pages so every in-page row access
    // (including the last, partial page) stays in bounds.
    mapBytes_ = numPages_ * pageFloats_ * sizeof(float);

    if (options_.reuseFile) {
        fd_ = ::open(options_.coldPath.c_str(), O_RDWR);
        if (fd_ < 0)
            fatal("cannot re-open cold-tier file ", options_.coldPath,
                  ": ", std::strerror(errno));
        struct stat st;
        if (::fstat(fd_, &st) != 0)
            fatal("fstat(", options_.coldPath,
                  "): ", std::strerror(errno));
        if (static_cast<std::uint64_t>(st.st_size) !=
            static_cast<std::uint64_t>(mapBytes_))
            fatal("cold-tier file ", options_.coldPath, " holds ",
                  st.st_size, " bytes but this table needs ", mapBytes_,
                  " (rows/dim/pageRows mismatch)");
    } else {
        fd_ = ::open(options_.coldPath.c_str(),
                     O_RDWR | O_CREAT | O_TRUNC, 0644);
        if (fd_ < 0)
            fatal("cannot create cold-tier file ", options_.coldPath,
                  ": ", std::strerror(errno));
        if (::ftruncate(fd_, static_cast<off_t>(mapBytes_)) != 0)
            fatal("ftruncate(", options_.coldPath, ", ", mapBytes_,
                  "): ", std::strerror(errno));
    }

    void *map = ::mmap(nullptr, mapBytes_, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd_, 0);
    if (map == MAP_FAILED)
        fatal("mmap of cold-tier file ", options_.coldPath, " (",
              mapBytes_, " bytes) failed: ", std::strerror(errno));
    cold_ = static_cast<float *>(map);

    const std::size_t pageBytes = pageFloats_ * sizeof(float);
    maxFrames_ = static_cast<std::size_t>(options_.hotBytes / pageBytes);
    maxFrames_ = std::max<std::size_t>(1, maxFrames_);
    maxFrames_ = std::min(maxFrames_, numPages_);

    frameOf_.assign(numPages_, kNoFrame);
    pagePtr_.resize(numPages_);
    for (std::size_t p = 0; p < numPages_; ++p)
        pagePtr_[p] = cold_ + p * pageFloats_;
    dirty_ = std::make_unique<std::atomic<std::uint8_t>[]>(numPages_);
    warmed_ = std::make_unique<std::atomic<std::uint8_t>[]>(numPages_);
    for (std::size_t p = 0; p < numPages_; ++p) {
        dirty_[p].store(0, std::memory_order_relaxed);
        warmed_[p].store(0, std::memory_order_relaxed);
    }
    refBit_.assign(numPages_, 0);
    pinEpoch_.assign(numPages_, 0);
}

TieredStore::~TieredStore()
{
    // The warm closure captures `this`; it must be done before we die.
    joinWarm();
    if (cold_ != nullptr)
        ::munmap(cold_, mapBytes_);
    if (fd_ >= 0)
        ::close(fd_);
    if (!options_.keepFile)
        ::unlink(options_.coldPath.c_str());
}

void
TieredStore::writeBack(std::size_t p)
{
    LAZYDP_TRACE_SPAN1(obs::TraceCat::Tier, "writeback", "page", p);
    const std::uint32_t f = frameOf_[p];
    float *coldPage = cold_ + p * pageFloats_;
    {
        // Exclude the warm task's reads of this region for the copy.
        std::lock_guard<std::mutex> lock(coldWriteMu_);
        std::memcpy(coldPage, frames_[f]->data(),
                    pageFloats_ * sizeof(float));
    }
    dirty_[p].store(0, std::memory_order_relaxed);
    writebacks_.fetch_add(1, std::memory_order_relaxed);
    obs::counterAdd(tierMetrics().writebacks);
}

std::size_t
TieredStore::acquireFrame(std::uint64_t epoch)
{
    if (!freeFrames_.empty()) {
        const std::size_t f = freeFrames_.back();
        freeFrames_.pop_back();
        return f;
    }
    if (frames_.size() < maxFrames_) {
        frames_.push_back(
            std::make_unique<TablePage>(pageFloats_, false));
        framePage_.push_back(kNoPage);
        return frames_.size() - 1;
    }

    // CLOCK with second chance. Lap 1 prefers CLEAN victims (an
    // eviction without write-back); lap 2 accepts dirty ones. Both
    // laps clear reference bits as they pass and skip pages pinned in
    // the current ensureResident call.
    const std::size_t n = frames_.size();
    for (int allowDirty = 0; allowDirty < 2; ++allowDirty) {
        for (std::size_t step = 0; step < 2 * n; ++step) {
            const std::size_t f = clockHand_;
            clockHand_ = (clockHand_ + 1) % n;
            const std::size_t q = framePage_[f];
            if (q == kNoPage)
                return f;
            if (pinEpoch_[q] == epoch)
                continue;
            if (refBit_[q]) {
                refBit_[q] = 0;
                continue;
            }
            const bool isDirty =
                dirty_[q].load(std::memory_order_relaxed) != 0;
            if (isDirty && allowDirty == 0)
                continue;
            if (isDirty)
                writeBack(q);
            evictions_.fetch_add(1, std::memory_order_relaxed);
            obs::counterAdd(tierMetrics().evictions);
            pagePtr_[q] = cold_ + q * pageFloats_;
            frameOf_[q] = kNoFrame;
            framePage_[f] = kNoPage;
            return f;
        }
    }

    // Every frame is pinned by the current working set: the hot budget
    // is smaller than one call's footprint. Grow past the budget
    // rather than deadlock; the counter makes the overcommit visible.
    overcommits_.fetch_add(1, std::memory_order_relaxed);
    frames_.push_back(std::make_unique<TablePage>(pageFloats_, false));
    framePage_.push_back(kNoPage);
    return frames_.size() - 1;
}

void
TieredStore::ensureResident(std::span<const std::uint32_t> rows)
{
    if (rows.empty())
        return;
    obs::TraceSpan span(obs::TraceCat::Tier, "ensure_resident",
                        {"rows", rows.size()});
    ++epoch_;
    std::uint64_t hitDelta = 0;
    std::uint64_t promoDelta = 0;
    for (const std::uint32_t r : rows) {
        const std::size_t p =
            static_cast<std::size_t>(r) / pageRows_;
        if (pinEpoch_[p] == epoch_)
            continue; // already handled in this call
        pinEpoch_[p] = epoch_;
        refBit_[p] = 1;
        if (frameOf_[p] != kNoFrame) {
            ++hitDelta;
            continue;
        }
        const std::size_t f = acquireFrame(epoch_);
        std::memcpy(frames_[f]->data(), cold_ + p * pageFloats_,
                    pageFloats_ * sizeof(float));
        frameOf_[p] = static_cast<std::uint32_t>(f);
        framePage_[f] = p;
        pagePtr_[p] = frames_[f]->data();
        dirty_[p].store(0, std::memory_order_relaxed);
        ++promoDelta;
        if (warmed_[p].exchange(0, std::memory_order_relaxed) != 0)
            warmedPromotions_.fetch_add(1, std::memory_order_relaxed);
    }
    // One batched update per call, not one per row: ensureResident is
    // on every training iteration's critical path.
    hits_.fetch_add(hitDelta, std::memory_order_relaxed);
    promotions_.fetch_add(promoDelta, std::memory_order_relaxed);
    span.setArg("promoted", promoDelta);
    if (obs::metricsEnabled()) {
        obs::counterAdd(tierMetrics().hits, hitDelta);
        obs::counterAdd(tierMetrics().promotions, promoDelta);
    }
}

void
TieredStore::warmRowsBody(const std::vector<std::uint32_t> &rows)
{
    obs::TraceSpan span(obs::TraceCat::Tier, "warm",
                        {"rows", rows.size()});
    std::uint64_t warmedDelta = 0;
    const std::size_t touchStride = 4096 / sizeof(float);
    std::size_t lastPage = kNoPage;
    for (const std::uint32_t r : rows) {
        const std::size_t p =
            static_cast<std::size_t>(r) / pageRows_;
        if (p == lastPage)
            continue;
        lastPage = p;
        if (warmed_[p].load(std::memory_order_relaxed) != 0)
            continue;
        const float *base = cold_ + p * pageFloats_;
        {
            // Mutual exclusion against eviction write-back / flush
            // writing these same bytes (see coldWriteMu_ contract).
            std::lock_guard<std::mutex> lock(coldWriteMu_);
            volatile float sink = 0.0f;
            for (std::size_t i = 0; i < pageFloats_; i += touchStride)
                sink = sink + base[i];
            sink = sink + base[pageFloats_ - 1];
            (void)sink;
        }
        warmed_[p].store(1, std::memory_order_relaxed);
        warmedPages_.fetch_add(1, std::memory_order_relaxed);
        ++warmedDelta;
    }
    span.setArg("warmed", warmedDelta);
    obs::counterAdd(tierMetrics().warmedPages, warmedDelta);
}

void
TieredStore::warmAsync(ThreadPool *pool, std::vector<std::uint32_t> rows)
{
    if (!options_.prefetch || pool == nullptr || rows.empty())
        return;
    warmSubmits_.fetch_add(1, std::memory_order_relaxed);
    obs::counterAdd(tierMetrics().warmSubmits);
    TaskHandle handle = pool->submitLane(
        ThreadPool::kTierPrefetchLane,
        [this, moved = std::move(rows)]() { warmRowsBody(moved); });
    std::lock_guard<std::mutex> lock(warmMu_);
    warmHandle_ = handle;
}

void
TieredStore::joinWarm() const
{
    TaskHandle handle;
    {
        std::lock_guard<std::mutex> lock(warmMu_);
        handle = warmHandle_;
    }
    // The prefetch lane is FIFO, so waiting on the most recent
    // submission waits on every earlier one too.
    if (handle.valid())
        handle.wait();
}

void
TieredStore::flush()
{
    joinWarm();
    for (std::size_t p = 0; p < numPages_; ++p) {
        if (frameOf_[p] != kNoFrame &&
            dirty_[p].load(std::memory_order_relaxed) != 0) {
            writeBack(p);
        }
    }
    if (::msync(cold_, mapBytes_, MS_SYNC) != 0)
        warn("msync(", options_.coldPath,
             ") failed: ", std::strerror(errno),
             " -- cold tier may not be durable");
}

void
TieredStore::copyRowsOut(std::uint64_t row, std::uint64_t n,
                         float *dst) const
{
    std::uint64_t r = row;
    const std::uint64_t end = row + n;
    while (r < end) {
        const std::size_t p = static_cast<std::size_t>(r / pageRows_);
        const std::uint64_t inPage = r % pageRows_;
        const std::uint64_t take =
            std::min<std::uint64_t>(end - r, pageRows_ - inPage);
        std::memcpy(dst, pagePtr_[p] + inPage * dim_,
                    take * dim_ * sizeof(float));
        dst += take * dim_;
        r += take;
    }
}

void
TieredStore::copyRowsIn(std::uint64_t row, std::uint64_t n,
                        const float *src)
{
    std::uint64_t r = row;
    const std::uint64_t end = row + n;
    while (r < end) {
        const std::size_t p = static_cast<std::size_t>(r / pageRows_);
        const std::uint64_t inPage = r % pageRows_;
        const std::uint64_t take =
            std::min<std::uint64_t>(end - r, pageRows_ - inPage);
        std::memcpy(pagePtrMut(p) + inPage * dim_, src,
                    take * dim_ * sizeof(float));
        src += take * dim_;
        r += take;
    }
}

TierStats
TieredStore::stats() const
{
    TierStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.promotions = promotions_.load(std::memory_order_relaxed);
    s.warmedPromotions =
        warmedPromotions_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.writebacks = writebacks_.load(std::memory_order_relaxed);
    s.warmSubmits = warmSubmits_.load(std::memory_order_relaxed);
    s.warmedPages = warmedPages_.load(std::memory_order_relaxed);
    s.overcommits = overcommits_.load(std::memory_order_relaxed);
    return s;
}

} // namespace lazydp
