#include "nn/embedding.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/macros.h"
#include "kernels/kernel_registry.h"
#include "rng/xoshiro.h"
#include "tensor/simd_kernels.h"

namespace lazydp {

EmbeddingTable::EmbeddingTable(std::uint64_t rows, std::size_t dim)
    : rows_(rows), dim_(dim), weights_(rows, dim)
{
    LAZYDP_ASSERT(rows > 0 && dim > 0, "degenerate embedding table");
}

EmbeddingTable::EmbeddingTable(std::uint64_t rows, std::size_t dim,
                               Paged)
    : rows_(rows), dim_(dim), paged_(true)
{
    LAZYDP_ASSERT(rows > 0 && dim > 0, "degenerate embedding table");
}

EmbeddingTable::EmbeddingTable(std::uint64_t rows, std::size_t dim,
                               const TieredOptions &tier_options)
    : rows_(rows), dim_(dim),
      tiered_(std::make_unique<TieredStore>(rows, dim, tier_options))
{
    LAZYDP_ASSERT(rows > 0 && dim > 0, "degenerate embedding table");
}

void
EmbeddingTable::bindPages(
    std::size_t page_rows,
    std::vector<std::shared_ptr<const TablePage>> pages)
{
    LAZYDP_ASSERT(paged_, "bindPages on a dense table");
    LAZYDP_ASSERT(page_rows > 0, "page size must be positive");
    LAZYDP_ASSERT(pages.size() ==
                      (rows_ + page_rows - 1) / page_rows,
                  "page count does not cover the table");
    for (const auto &p : pages)
        LAZYDP_ASSERT(p != nullptr && p->floats() >= page_rows * dim_,
                      "undersized table page");
    pageRows_ = page_rows;
    pages_ = std::move(pages);
}

void
EmbeddingTable::unbindPages()
{
    LAZYDP_ASSERT(paged_, "unbindPages on a dense table");
    pages_.clear();
}

void
EmbeddingTable::initUniform(std::uint64_t seed)
{
    LAZYDP_ASSERT(!paged_, "initUniform on a paged table");
    Xoshiro256 rng(seed);
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim_));
    if (tiered_ != nullptr) {
        // Same linear RNG sequence as the dense fill, materialized one
        // page segment at a time (write-through: the cold file becomes
        // the initialized table without consuming hot frames).
        const std::size_t page_rows = tiered_->pageRows();
        std::uint64_t r = 0;
        while (r < rows_) {
            const std::size_t p =
                static_cast<std::size_t>(r / page_rows);
            const std::uint64_t take =
                std::min<std::uint64_t>(rows_ - r, page_rows);
            float *w = tiered_->pagePtrMut(p);
            const std::size_t n = static_cast<std::size_t>(take) * dim_;
            for (std::size_t i = 0; i < n; ++i)
                w[i] = (2.0f * rng.nextFloat() - 1.0f) * scale;
            r += take;
        }
        return;
    }
    float *w = weights_.data();
    const std::size_t n = weights_.size();
    for (std::size_t i = 0; i < n; ++i)
        w[i] = (2.0f * rng.nextFloat() - 1.0f) * scale;
}

void
EmbeddingTable::forward(std::span<const std::uint32_t> indices,
                        std::size_t batch, std::size_t pooling,
                        Tensor &out) const
{
    LAZYDP_ASSERT(indices.size() == batch * pooling,
                  "index count != batch * pooling");
    LAZYDP_ASSERT(out.rows() == batch && out.cols() == dim_,
                  "embedding output shape mismatch");
    for (const std::uint32_t row : indices)
        LAZYDP_ASSERT(row < rows_, "embedding row out of range");
    const KernelTable &kt = kernels();
    if (tiered_ != nullptr) {
        // Tiered gather: same fill + per-slot add scheme as the paged
        // branch below (rows are not contiguous across pages, so the
        // base-pointer poolRows kernel cannot be used). Both poolRows
        // backends do exactly fill + elementwise adds in slot order,
        // so this scores BIT-identically to the dense path -- the same
        // equivalence the delta-snapshot parity contract rests on.
        // Reads never promote: a cold lookup streams from the mapping.
        for (std::size_t e = 0; e < batch; ++e) {
            float *dst = out.data() + e * dim_;
            kt.fill(dst, dim_, 0.0f);
            for (std::size_t s = 0; s < pooling; ++s)
                kt.add(dst, dst, rowPtr(indices[e * pooling + s]),
                       dim_);
        }
        return;
    }
    if (paged_) {
        // Paged gather: zero the destination, then add each gathered
        // row in slot order. Both poolRows backends do exactly this
        // (fill + per-slot elementwise add), so a paged snapshot scores
        // BIT-identically to the dense table it was copied from -- the
        // delta-vs-full parity contract rests on this.
        LAZYDP_ASSERT(!pages_.empty(), "forward on an unbound paged table");
        for (std::size_t e = 0; e < batch; ++e) {
            float *dst = out.data() + e * dim_;
            kt.fill(dst, dim_, 0.0f);
            for (std::size_t s = 0; s < pooling; ++s)
                kt.add(dst, dst, rowPtr(indices[e * pooling + s]),
                       dim_);
        }
        return;
    }
    for (std::size_t e = 0; e < batch; ++e) {
        kt.poolRows(out.data() + e * dim_, weights_.data(),
                    indices.data() + e * pooling, pooling, dim_);
    }
}

void
EmbeddingTable::backward(std::span<const std::uint32_t> indices,
                         std::size_t batch, std::size_t pooling,
                         const Tensor &d_out, SparseGrad &grad) const
{
    LAZYDP_ASSERT(indices.size() == batch * pooling,
                  "index count != batch * pooling");
    LAZYDP_ASSERT(d_out.rows() == batch && d_out.cols() == dim_,
                  "embedding output-grad shape mismatch");

    uniqueRows(indices, grad.rows);
    grad.values.resize(grad.rows.size(), dim_);

    // Sum-pooling distributes the pooled gradient unchanged to each
    // gathered row; duplicates within an example accumulate twice, as
    // autograd would.
    for (std::size_t e = 0; e < batch; ++e) {
        const float *src = d_out.data() + e * dim_;
        for (std::size_t s = 0; s < pooling; ++s) {
            const std::uint32_t row = indices[e * pooling + s];
            const auto it = std::lower_bound(grad.rows.begin(),
                                             grad.rows.end(), row);
            const auto slot =
                static_cast<std::size_t>(it - grad.rows.begin());
            simd::axpy(grad.values.data() + slot * dim_, src, dim_, 1.0f);
        }
    }
}

void
EmbeddingTable::applySparse(const SparseGrad &grad, float lr)
{
    LAZYDP_ASSERT(grad.values.rows() == grad.rows.size() &&
                      grad.values.cols() == dim_,
                  "sparse gradient shape mismatch");
    for (const std::uint32_t row : grad.rows)
        LAZYDP_ASSERT(row < rows_, "sparse grad row out of range");
    if (tiered_ != nullptr) {
        // Promote the touched pages, then update row by row. Both
        // scatterAxpyRows backends are exactly a per-row axpy over the
        // coalesced list (kernels_{scalar,avx2}.cc), so this is
        // bit-identical to the dense scatter below.
        tiered_->ensureResident(grad.rows);
        const KernelTable &kt = kernels();
        for (std::size_t i = 0; i < grad.rows.size(); ++i) {
            kt.axpy(tiered_->rowPtrMut(grad.rows[i]),
                    grad.values.data() + i * dim_, dim_, -lr);
        }
        return;
    }
    // Coalesced rows are unique, so the scatter kernel's no-alias
    // contract holds.
    kernels().scatterAxpyRows(weights_.data(), grad.rows.data(),
                              grad.values.data(), grad.rows.size(), dim_,
                              -lr);
}

void
EmbeddingTable::copyRowsOut(std::uint64_t row, std::uint64_t n,
                            float *dst) const
{
    LAZYDP_ASSERT(row + n <= rows_, "copyRowsOut out of range");
    if (n == 0)
        return;
    if (tiered_ != nullptr) {
        tiered_->copyRowsOut(row, n, dst);
        return;
    }
    if (paged_) {
        for (std::uint64_t r = row; r < row + n; ++r, dst += dim_)
            std::memcpy(dst, rowPtr(r), dim_ * sizeof(float));
        return;
    }
    std::memcpy(dst, weights_.data() + row * dim_,
                static_cast<std::size_t>(n) * dim_ * sizeof(float));
}

void
EmbeddingTable::copyRowsIn(std::uint64_t row, std::uint64_t n,
                           const float *src)
{
    LAZYDP_ASSERT(!paged_, "copyRowsIn on a paged table");
    LAZYDP_ASSERT(row + n <= rows_, "copyRowsIn out of range");
    if (n == 0)
        return;
    if (tiered_ != nullptr) {
        tiered_->copyRowsIn(row, n, src);
        return;
    }
    std::memcpy(weights_.data() + row * dim_, src,
                static_cast<std::size_t>(n) * dim_ * sizeof(float));
}

void
uniqueRows(std::span<const std::uint32_t> indices,
           std::vector<std::uint32_t> &out)
{
    out.assign(indices.begin(), indices.end());
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
}

} // namespace lazydp
