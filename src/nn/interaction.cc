#include "nn/interaction.h"

#include <cstring>

#include "common/macros.h"
#include "tensor/simd_kernels.h"

namespace lazydp {

DotInteraction::DotInteraction(std::size_t num_inputs, std::size_t dim)
    : numInputs_(num_inputs), dim_(dim)
{
    LAZYDP_ASSERT(num_inputs >= 2, "interaction needs >= 2 inputs");
}

std::size_t
DotInteraction::outputDim() const
{
    return dim_ + numInputs_ * (numInputs_ - 1) / 2;
}

void
DotInteraction::forward(const std::vector<const Tensor *> &inputs,
                        Tensor &out, ExecContext &exec)
{
    forwardInto(inputs, out, cache_, exec);
}

void
DotInteraction::forwardInto(const std::vector<const Tensor *> &inputs,
                            Tensor &out, Tensor &cache,
                            ExecContext &exec) const
{
    LAZYDP_ASSERT(inputs.size() == numInputs_, "interaction input count");
    const std::size_t batch = inputs[0]->rows();
    for (const Tensor *t : inputs) {
        LAZYDP_ASSERT(t->rows() == batch && t->cols() == dim_,
                      "interaction input shape");
    }
    LAZYDP_ASSERT(out.rows() == batch && out.cols() == outputDim(),
                  "interaction output shape");

    if (cache.rows() != batch || cache.cols() != numInputs_ * dim_)
        cache.resize(batch, numInputs_ * dim_);
    for (std::size_t i = 0; i < numInputs_; ++i) {
        for (std::size_t e = 0; e < batch; ++e) {
            std::memcpy(cache.data() + (e * numInputs_ + i) * dim_,
                        inputs[i]->data() + e * dim_,
                        dim_ * sizeof(float));
        }
    }

    parallelFor(exec, batch, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t e = lo; e < hi; ++e) {
            float *dst = out.data() + e * outputDim();
            const float *feats = cache.data() + e * numInputs_ * dim_;
            // pass-through of the dense (bottom MLP) vector
            std::memcpy(dst, feats, dim_ * sizeof(float));
            std::size_t k = dim_;
            for (std::size_t i = 0; i < numInputs_; ++i) {
                for (std::size_t j = i + 1; j < numInputs_; ++j) {
                    dst[k++] = static_cast<float>(simd::dot(
                        feats + i * dim_, feats + j * dim_, dim_));
                }
            }
        }
    });
}

void
DotInteraction::backward(const Tensor &d_out,
                         const std::vector<Tensor *> &d_inputs,
                         ExecContext &exec) const
{
    backwardFrom(d_out, d_inputs, cache_, exec);
}

void
DotInteraction::backwardFrom(const Tensor &d_out,
                             const std::vector<Tensor *> &d_inputs,
                             const Tensor &cache, ExecContext &exec) const
{
    LAZYDP_ASSERT(d_inputs.size() == numInputs_, "interaction grad count");
    const std::size_t batch = d_out.rows();
    LAZYDP_ASSERT(d_out.cols() == outputDim(), "interaction grad width");
    LAZYDP_ASSERT(cache.rows() == batch,
                  "interaction backward without forward");

    for (Tensor *t : d_inputs) {
        LAZYDP_ASSERT(t->rows() == batch && t->cols() == dim_,
                      "interaction d_input shape");
        t->zero();
    }

    parallelFor(exec, batch, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t e = lo; e < hi; ++e) {
            const float *g = d_out.data() + e * outputDim();
            const float *feats = cache.data() + e * numInputs_ * dim_;
            // pass-through gradient into input 0
            simd::add(d_inputs[0]->data() + e * dim_,
                      d_inputs[0]->data() + e * dim_, g, dim_);
            std::size_t k = dim_;
            for (std::size_t i = 0; i < numInputs_; ++i) {
                for (std::size_t j = i + 1; j < numInputs_; ++j) {
                    const float gk = g[k++];
                    if (gk == 0.0f)
                        continue;
                    // d z_i += g * z_j ; d z_j += g * z_i
                    simd::axpy(d_inputs[i]->data() + e * dim_,
                               feats + j * dim_, dim_, gk);
                    simd::axpy(d_inputs[j]->data() + e * dim_,
                               feats + i * dim_, dim_, gk);
                }
            }
        }
    });
}

} // namespace lazydp
