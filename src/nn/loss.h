/**
 * @file
 * Binary cross-entropy with logits for CTR prediction.
 */

#ifndef LAZYDP_NN_LOSS_H
#define LAZYDP_NN_LOSS_H

#include <vector>

#include "tensor/tensor.h"

namespace lazydp {

/** Numerically stable BCE-with-logits loss. */
class BceWithLogitsLoss
{
  public:
    /**
     * @param logits (batch x 1) raw scores
     * @param labels length-batch 0/1 targets
     * @return mean loss over the batch
     */
    static double forward(const Tensor &logits,
                          const std::vector<float> &labels);

    /**
     * Un-normalized loss: the SUM of per-example losses (double
     * accumulation in example order). The lot-sharded engines compute
     * one sum per microbatch shard and merge them through the fixed
     * reduction tree before dividing by the lot size once -- forward()
     * is forwardSum() / batch.
     */
    static double forwardSum(const Tensor &logits,
                             const std::vector<float> &labels);

    /**
     * Per-example logit gradients, *not* divided by the batch size:
     * d_e = sigmoid(z_e) - y_e.
     *
     * SGD divides by B once; the DP engines instead clip these
     * per-example contributions first (Section 2.4).
     *
     * @param logits (batch x 1) raw scores
     * @param labels targets
     * @param d_logits (batch x 1) output
     */
    static void backwardPerExample(const Tensor &logits,
                                   const std::vector<float> &labels,
                                   Tensor &d_logits);
};

} // namespace lazydp

#endif // LAZYDP_NN_LOSS_H
