/**
 * @file
 * The DLRM recommendation model (Figure 1 of the paper): bottom MLP
 * over dense features, embedding tables over sparse features, dot
 * feature interaction, top MLP producing a CTR logit.
 *
 * The model exposes exactly the hooks the SGD / DP-SGD(B/R/F) / EANA /
 * LazyDP engines need:
 *   - forward() caching all activations;
 *   - backward() from per-example logit gradients, filling per-layer
 *     MLP batch gradients and per-table pooled-embedding gradients,
 *     optionally accumulating per-example ghost norms;
 *   - backwardPerExample() materializing per-example MLP gradients;
 *   - sparse embedding backward/apply helpers.
 */

#ifndef LAZYDP_NN_DLRM_H
#define LAZYDP_NN_DLRM_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "data/minibatch.h"
#include "nn/embedding.h"
#include "nn/interaction.h"
#include "nn/mlp.h"
#include "nn/model_config.h"

namespace lazydp {

/**
 * Forward/backward activation state of one DLRM pass, hoisted out of
 * the model so several lot shards can run partial-batch passes
 * CONCURRENTLY against the same (read-only) weights -- the
 * data-parallel replica path. The model keeps one private workspace
 * serving the classic workspace-less entry points.
 */
struct DlrmWorkspace
{
    MlpWorkspace bottom;         //!< bottom-MLP caches
    MlpWorkspace top;            //!< top-MLP caches
    Tensor bottomOut;            //!< (batch x embedDim)
    std::vector<Tensor> embOut;  //!< per table (batch x embedDim)
    Tensor interOut;             //!< (batch x interactionDim)
    Tensor interCache;           //!< interaction input cache
    Tensor dInterOut;            //!< (batch x interactionDim)
    Tensor dBottomOut;           //!< (batch x embedDim)
    std::vector<Tensor> dEmbOut; //!< per table (batch x embedDim)
    std::size_t lastBatch = 0;   //!< batch of the last forward
};

/** Caller-owned MLP batch-gradient sums of one partial-batch backward. */
struct DlrmGradSums
{
    MlpGradSums bottom; //!< bottom-MLP per-layer sums
    MlpGradSums top;    //!< top-MLP per-layer sums
};

/** DLRM model; see file comment. */
class DlrmModel
{
  public:
    /**
     * @param config validated model shape
     * @param seed weight-initialization seed
     */
    DlrmModel(const ModelConfig &config, std::uint64_t seed);

    /**
     * Tag selecting the snapshot-buffer constructor: embedding tables
     * are allocated (zeroed) but their per-row RNG initialization is
     * skipped, because the caller overwrites every weight immediately
     * (ModelSnapshotStore::publish). At paper-scale tables the skipped
     * fill is the dominant cost of constructing a snapshot buffer; the
     * MLPs still initialize (kilobytes, not gigabytes).
     */
    struct UninitializedTables
    {
    };

    /** Snapshot-buffer constructor; see UninitializedTables. */
    DlrmModel(const ModelConfig &config, UninitializedTables);

    /**
     * Tag selecting the DELTA-snapshot-buffer constructor: embedding
     * tables are built in PAGED mode (EmbeddingTable::Paged) with no
     * dense allocation at all -- ModelSnapshotStore binds refcounted
     * page handles at publish time, sharing untouched pages with the
     * previous snapshot. Only the const read path (workspace forward)
     * is usable on such a model.
     */
    struct PagedTables
    {
    };

    /** Delta-snapshot-buffer constructor; see PagedTables. */
    DlrmModel(const ModelConfig &config, PagedTables);

    /**
     * Out-of-core model configuration: every embedding table is built
     * in TIERED mode (see nn/tiered_store.h), with the DRAM hot budget
     * divided across tables proportionally to their size and one cold
     * data file per table under coldDir. MLPs stay dense (kilobytes).
     */
    struct TieredModelOptions
    {
        std::uint64_t hotBytes = 0;  //!< total hot budget, all tables
        std::string coldDir;         //!< directory for the cold files
        std::size_t pageRows = 256;  //!< rows per page (multiple of 8)
        bool prefetch = true;        //!< lookahead warm tasks on/off
        bool reuseFiles = false;     //!< re-open existing cold files
        bool keepFiles = false;      //!< keep cold files on destruction
    };

    /**
     * Tiered constructor: same weights as DlrmModel(config, seed) --
     * the per-table init RNG streams are identical -- but the tables
     * live out of core. When @p tier .reuseFiles is set the RNG init is
     * skipped and weights come from the existing cold files instead
     * (crash recovery).
     */
    DlrmModel(const ModelConfig &config, std::uint64_t seed,
              const TieredModelOptions &tier);

    /** @return true when the embedding tables are tiered. */
    bool
    tiered() const
    {
        return !tables_.empty() && tables_.front().tiered();
    }

    /** @return cold-file path of table @p t under @p dir (the naming
     * contract shared by the tiered ctor and crash recovery). */
    static std::string tieredColdPath(const std::string &dir,
                                      std::size_t t);

    /** Join every table's in-flight warm task (no-op unless tiered). */
    void drainTierWarm() const;

    /** Write all dirty hot pages back to the cold files and msync
     * them (no-op unless tiered). */
    void flushTiers();

    /** @return summed TierStats over all tables (zeros unless
     * tiered). */
    TierStats tierStats() const;

    /**
     * Forward pass over a mini-batch.
     *
     * @param mb input batch (must match the config's shape)
     * @param logits (batch x 1) output scores
     * @param exec execution context for the GEMM/interaction kernels
     */
    void forward(const MiniBatch &mb, Tensor &logits,
                 ExecContext &exec = ExecContext::serial());

    /**
     * Partial-batch workspace forward: identical math, but every
     * activation cache lives in the caller's @p ws. Const -- safe to
     * run concurrently from several lot shards, each with its own
     * workspace, while nobody mutates the weights. Each output row
     * depends only on its own example, so the rows a shard produces
     * are bit-identical to the same examples' rows in a full-lot pass.
     */
    void forward(const MiniBatch &mb, Tensor &logits, DlrmWorkspace &ws,
                 ExecContext &exec) const;

    /**
     * Backward from per-example logit gradients.
     *
     * Fills every MLP layer's batch weight/bias gradient and, for each
     * table, the pooled-output gradient (readable via embOutGrad()).
     *
     * @param d_logits (batch x 1), one row per example (callers encode
     *        1/B averaging or per-example clip factors into these rows)
     * @param ghost_norm_sq when non-null, accumulates each example's
     *        squared MLP gradient norm (ghost norms; embedding terms
     *        are added separately via accumulateEmbeddingGhostNormSq)
     */
    void backward(const Tensor &d_logits,
                  std::vector<double> *ghost_norm_sq = nullptr,
                  bool skip_param_grads = false,
                  ExecContext &exec = ExecContext::serial());

    /**
     * Partial-batch workspace backward: MLP batch-gradient sums land in
     * the caller's @p sums (required unless skip_param_grads), pooled
     * embedding gradients in ws.dEmbOut. The model's own gradient
     * tensors stay untouched -- the caller tree-reduces shard sums into
     * them afterwards.
     */
    void backward(const Tensor &d_logits,
                  std::vector<double> *ghost_norm_sq,
                  bool skip_param_grads, DlrmWorkspace &ws,
                  DlrmGradSums *sums, ExecContext &exec) const;

    /**
     * DP-SGD(R)'s norm pass: per-example MLP gradients are materialized
     * layer-by-layer into scratch (then discarded) to accumulate
     * per-example squared norms; no batch parameter gradients are
     * produced. Pooled-embedding gradients are produced as usual.
     */
    void backwardNormsOnly(const Tensor &d_logits,
                           std::vector<double> &norm_sq,
                           ExecContext &exec = ExecContext::serial());

    /** Partial-batch workspace variant of backwardNormsOnly. */
    void backwardNormsOnly(const Tensor &d_logits,
                           std::vector<double> &norm_sq,
                           DlrmWorkspace &ws, ExecContext &exec) const;

    /**
     * Backward materializing per-example MLP gradients (DP-SGD(B)).
     * Pooled-embedding gradients are produced as in backward().
     *
     * @param d_logits per-example logit gradients
     * @param top_grads per-example grads of the top MLP
     * @param bottom_grads per-example grads of the bottom MLP
     */
    void backwardPerExample(const Tensor &d_logits,
                            PerExampleGrads &top_grads,
                            PerExampleGrads &bottom_grads,
                            ExecContext &exec = ExecContext::serial());

    /** Partial-batch workspace variant of backwardPerExample. */
    void backwardPerExample(const Tensor &d_logits,
                            PerExampleGrads &top_grads,
                            PerExampleGrads &bottom_grads,
                            DlrmWorkspace &ws, ExecContext &exec) const;

    /**
     * Add each example's squared embedding-gradient norm (all tables)
     * into @p out. Exact, accounting for duplicate indices within an
     * example (multiplicity m contributes m^2 * ||g_e||^2).
     *
     * Requires backward() (or backwardPerExample()) to have run.
     */
    void accumulateEmbeddingGhostNormSq(const MiniBatch &mb,
                                        std::vector<double> &out) const;

    /** Workspace variant: reads pooled grads from @p ws .dEmbOut. */
    void accumulateEmbeddingGhostNormSq(const MiniBatch &mb,
                                        std::vector<double> &out,
                                        const DlrmWorkspace &ws) const;

    /** @return pooled-output gradient of table @p t (batch x dim). */
    const Tensor &embOutGrad(std::size_t t) const;

    /** Coalesce the sparse gradient of table @p t from embOutGrad. */
    void embeddingBackward(const MiniBatch &mb, std::size_t t,
                           SparseGrad &grad) const;

    /**
     * Coalesce the sparse gradient of table @p t from an explicit
     * pooled-output gradient tensor (batch x dim) -- the post-reduce
     * path of the lot-sharded engines, whose pooled gradients are
     * gathered from the shard workspaces rather than the model's own.
     */
    void embeddingBackwardFrom(const MiniBatch &mb, std::size_t t,
                               const Tensor &d_out,
                               SparseGrad &grad) const;

    /** SGD step on both MLPs with the stored batch gradients. */
    void applyMlps(float lr);

    /**
     * Overwrite all parameters (embedding tables + both MLPs' weights
     * and biases) with @p other 's. Configurations must be identical
     * (panics otherwise). Gradients, caches and workspaces are not
     * touched -- copying exactly the state a const forward() reads is
     * what lets ModelSnapshotStore publish consistent serving replicas
     * while training keeps mutating the source model.
     */
    void copyWeightsFrom(const DlrmModel &other);

    /**
     * Overwrite only the dense (MLP) parameters with @p other 's. The
     * delta-publish path: MLPs are kilobytes and fully dirty every
     * iteration, so they are always copied outright, while the
     * embedding tables (the gigabytes) go through page-granular
     * copy-on-write instead.
     */
    void copyMlpWeightsFrom(const DlrmModel &other);

    /** @return the embedding tables. */
    std::vector<EmbeddingTable> &tables() { return tables_; }
    const std::vector<EmbeddingTable> &tables() const { return tables_; }

    Mlp &bottomMlp() { return bottom_; }
    Mlp &topMlp() { return top_; }
    const Mlp &bottomMlp() const { return bottom_; }
    const Mlp &topMlp() const { return top_; }

    const ModelConfig &config() const { return config_; }

    /** @return total dense (MLP) parameter count. */
    std::size_t mlpParamCount() const;

    /** @return total embedding-table bytes. */
    std::uint64_t tableBytes() const;

  private:
    /** Size @p ws 's per-table vectors and record @p batch. */
    void prepareWorkspace(DlrmWorkspace &ws, std::size_t batch) const;

    ModelConfig config_;
    Mlp bottom_;
    std::vector<EmbeddingTable> tables_;
    DotInteraction interaction_;
    Mlp top_;

    // Workspace backing the classic (workspace-less) entry points.
    DlrmWorkspace ws_;
};

} // namespace lazydp

#endif // LAZYDP_NN_DLRM_H
