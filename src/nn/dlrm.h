/**
 * @file
 * The DLRM recommendation model (Figure 1 of the paper): bottom MLP
 * over dense features, embedding tables over sparse features, dot
 * feature interaction, top MLP producing a CTR logit.
 *
 * The model exposes exactly the hooks the SGD / DP-SGD(B/R/F) / EANA /
 * LazyDP engines need:
 *   - forward() caching all activations;
 *   - backward() from per-example logit gradients, filling per-layer
 *     MLP batch gradients and per-table pooled-embedding gradients,
 *     optionally accumulating per-example ghost norms;
 *   - backwardPerExample() materializing per-example MLP gradients;
 *   - sparse embedding backward/apply helpers.
 */

#ifndef LAZYDP_NN_DLRM_H
#define LAZYDP_NN_DLRM_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "data/minibatch.h"
#include "nn/embedding.h"
#include "nn/interaction.h"
#include "nn/mlp.h"
#include "nn/model_config.h"

namespace lazydp {

/** DLRM model; see file comment. */
class DlrmModel
{
  public:
    /**
     * @param config validated model shape
     * @param seed weight-initialization seed
     */
    DlrmModel(const ModelConfig &config, std::uint64_t seed);

    /**
     * Forward pass over a mini-batch.
     *
     * @param mb input batch (must match the config's shape)
     * @param logits (batch x 1) output scores
     * @param exec execution context for the GEMM/interaction kernels
     */
    void forward(const MiniBatch &mb, Tensor &logits,
                 ExecContext &exec = ExecContext::serial());

    /**
     * Backward from per-example logit gradients.
     *
     * Fills every MLP layer's batch weight/bias gradient and, for each
     * table, the pooled-output gradient (readable via embOutGrad()).
     *
     * @param d_logits (batch x 1), one row per example (callers encode
     *        1/B averaging or per-example clip factors into these rows)
     * @param ghost_norm_sq when non-null, accumulates each example's
     *        squared MLP gradient norm (ghost norms; embedding terms
     *        are added separately via accumulateEmbeddingGhostNormSq)
     */
    void backward(const Tensor &d_logits,
                  std::vector<double> *ghost_norm_sq = nullptr,
                  bool skip_param_grads = false,
                  ExecContext &exec = ExecContext::serial());

    /**
     * DP-SGD(R)'s norm pass: per-example MLP gradients are materialized
     * layer-by-layer into scratch (then discarded) to accumulate
     * per-example squared norms; no batch parameter gradients are
     * produced. Pooled-embedding gradients are produced as usual.
     */
    void backwardNormsOnly(const Tensor &d_logits,
                           std::vector<double> &norm_sq,
                           ExecContext &exec = ExecContext::serial());

    /**
     * Backward materializing per-example MLP gradients (DP-SGD(B)).
     * Pooled-embedding gradients are produced as in backward().
     *
     * @param d_logits per-example logit gradients
     * @param top_grads per-example grads of the top MLP
     * @param bottom_grads per-example grads of the bottom MLP
     */
    void backwardPerExample(const Tensor &d_logits,
                            PerExampleGrads &top_grads,
                            PerExampleGrads &bottom_grads,
                            ExecContext &exec = ExecContext::serial());

    /**
     * Add each example's squared embedding-gradient norm (all tables)
     * into @p out. Exact, accounting for duplicate indices within an
     * example (multiplicity m contributes m^2 * ||g_e||^2).
     *
     * Requires backward() (or backwardPerExample()) to have run.
     */
    void accumulateEmbeddingGhostNormSq(const MiniBatch &mb,
                                        std::vector<double> &out) const;

    /** @return pooled-output gradient of table @p t (batch x dim). */
    const Tensor &embOutGrad(std::size_t t) const;

    /**
     * Mutable pooled-output gradient (DP-SGD(B) scales each example's
     * row by its clip factor in place before coalescing).
     */
    Tensor &embOutGradMutable(std::size_t t);

    /** Coalesce the sparse gradient of table @p t from embOutGrad. */
    void embeddingBackward(const MiniBatch &mb, std::size_t t,
                           SparseGrad &grad) const;

    /** SGD step on both MLPs with the stored batch gradients. */
    void applyMlps(float lr);

    /** @return the embedding tables. */
    std::vector<EmbeddingTable> &tables() { return tables_; }
    const std::vector<EmbeddingTable> &tables() const { return tables_; }

    Mlp &bottomMlp() { return bottom_; }
    Mlp &topMlp() { return top_; }
    const Mlp &bottomMlp() const { return bottom_; }
    const Mlp &topMlp() const { return top_; }

    const ModelConfig &config() const { return config_; }

    /** @return total dense (MLP) parameter count. */
    std::size_t mlpParamCount() const;

    /** @return total embedding-table bytes. */
    std::uint64_t tableBytes() const;

  private:
    ModelConfig config_;
    Mlp bottom_;
    std::vector<EmbeddingTable> tables_;
    DotInteraction interaction_;
    Mlp top_;

    // Forward caches
    Tensor bottomOut_;               // (batch x embedDim)
    std::vector<Tensor> embOut_;     // per table (batch x embedDim)
    Tensor interOut_;                // (batch x interactionDim)

    // Backward caches
    Tensor dInterOut_;               // (batch x interactionDim)
    Tensor dBottomOut_;              // (batch x embedDim)
    std::vector<Tensor> dEmbOut_;    // per table (batch x embedDim)
    std::size_t lastBatch_ = 0;
};

} // namespace lazydp

#endif // LAZYDP_NN_DLRM_H
