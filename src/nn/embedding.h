/**
 * @file
 * Embedding-bag layer: the sparse half of a DLRM model and the object
 * of the paper's entire optimization effort.
 *
 * Forward gathers `pooling` rows per example and sum-pools them;
 * backward produces *sparse* row gradients (each accessed row's gradient
 * is the pooled output gradient of the examples that touched it).
 * Non-private SGD applies those sparse gradients directly; DP-SGD must
 * additionally touch every row with Gaussian noise, which is the dense
 * traffic LazyDP eliminates.
 */

#ifndef LAZYDP_NN_EMBEDDING_H
#define LAZYDP_NN_EMBEDDING_H

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/macros.h"
#include "nn/table_page.h"
#include "nn/tiered_store.h"
#include "tensor/tensor.h"

namespace lazydp {

/**
 * Coalesced sparse gradient of one embedding table.
 *
 * `rows[i]` is a table row id (strictly increasing, no duplicates) and
 * `values.row(i)` its summed gradient. Produced by
 * EmbeddingTable::backward, consumed by the optimizers.
 */
struct SparseGrad
{
    std::vector<std::uint32_t> rows; //!< sorted unique row ids
    Tensor values;                   //!< (rows.size() x dim) gradients

    /** Reset to empty without releasing capacity of `rows`. */
    void
    clear()
    {
        rows.clear();
    }
};

/** One embedding table with sum pooling. */
class EmbeddingTable
{
  public:
    /**
     * @param rows number of embedding vectors
     * @param dim embedding dimension
     */
    EmbeddingTable(std::uint64_t rows, std::size_t dim);

    /**
     * Tag selecting the PAGED (read-only snapshot) storage mode: no
     * dense weight tensor is allocated; instead the table later binds
     * a vector of refcount-shared TablePages (bindPages) and serves
     * const reads (forward / const rowPtr) straight out of them. The
     * mutable entry points (initUniform, applySparse, weights(),
     * mutable rowPtr) are off-limits in this mode -- a paged table is
     * the read side of a delta snapshot, never a training target.
     */
    struct Paged
    {
    };

    /** Paged-mode constructor; see Paged. */
    EmbeddingTable(std::uint64_t rows, std::size_t dim, Paged);

    /**
     * TIERED (out-of-core) storage mode: no dense weight tensor;
     * instead a TieredStore keeps hot pages in DRAM frames over a
     * file-backed cold tier (see nn/tiered_store.h). Every mutable
     * entry point works and produces a model bit-identical to the
     * dense mode -- sparse updates promote their rows first and run
     * the same per-row kernels; dense sweeps write through to the cold
     * tier. Only weights() is off-limits (there is no contiguous
     * buffer); bulk access goes through copyRowsOut / copyRowsIn.
     */
    EmbeddingTable(std::uint64_t rows, std::size_t dim,
                   const TieredOptions &tier_options);

    /** Initialize weights uniformly in [-1/sqrt(dim), 1/sqrt(dim)]. */
    void initUniform(std::uint64_t seed);

    /**
     * Sum-pool lookup.
     *
     * @param indices batch*pooling row ids, layout [example][slot]
     * @param batch number of examples
     * @param pooling lookups per example
     * @param out (batch x dim) pooled embeddings (overwritten)
     */
    void forward(std::span<const std::uint32_t> indices, std::size_t batch,
                 std::size_t pooling, Tensor &out) const;

    /**
     * Sparse backward: coalesce per-row gradients from the pooled
     * output gradient.
     *
     * @param indices same layout as forward
     * @param d_out (batch x dim) gradient of the pooled output
     * @param grad output: sorted, duplicate-free row gradients
     */
    void backward(std::span<const std::uint32_t> indices, std::size_t batch,
                  std::size_t pooling, const Tensor &d_out,
                  SparseGrad &grad) const;

    /** w[row] -= lr * g for every row of the sparse gradient. */
    void applySparse(const SparseGrad &grad, float lr);

    std::uint64_t rows() const { return rows_; }
    std::size_t dim() const { return dim_; }

    /** @return true in paged (snapshot read) storage mode. */
    bool paged() const { return paged_; }

    /** @return true in tiered (out-of-core) storage mode. */
    bool tiered() const { return tiered_ != nullptr; }

    /** @return the tiered backing store (tiered mode only). */
    TieredStore &
    tier()
    {
        LAZYDP_ASSERT(tiered_ != nullptr, "tier() on a non-tiered table");
        return *tiered_;
    }
    const TieredStore &
    tier() const
    {
        LAZYDP_ASSERT(tiered_ != nullptr, "tier() on a non-tiered table");
        return *tiered_;
    }

    /** @return rows per bound page (0 until bindPages in paged mode). */
    std::size_t pageRows() const { return pageRows_; }

    /**
     * Bind the paged backing store: page p holds rows
     * [p*page_rows, min((p+1)*page_rows, rows)). Pages may be shared
     * with other snapshots (that is the point); the table only ever
     * reads them. Paged mode only.
     */
    void bindPages(std::size_t page_rows,
                   std::vector<std::shared_ptr<const TablePage>> pages);

    /**
     * Drop all page references (retiring a snapshot shell into the
     * recycling pool must not pin pages newer snapshots still share).
     */
    void unbindPages();

    /** @return the bound pages (paged mode; for sharing + tests). */
    const std::vector<std::shared_ptr<const TablePage>> &
    pages() const
    {
        return pages_;
    }

    /**
     * @return mutable raw weight row (used by the DP optimizers).
     * Tiered mode: writes land in the hot frame when the row's page is
     * resident (marking it dirty) and go straight to the cold tier
     * otherwise -- never promotes. Sparse update paths that want the
     * row hot must ensureResident first.
     */
    float *
    rowPtr(std::uint64_t r)
    {
        if (tiered_ != nullptr)
            return tiered_->rowPtrMut(r);
        return weights_.data() + r * dim_;
    }

    /** @return const raw weight row (dense, paged or tiered storage). */
    const float *
    rowPtr(std::uint64_t r) const
    {
        if (tiered_ != nullptr)
            return tiered_->rowPtr(r);
        if (paged_)
            return pages_[r / pageRows_]->data() +
                   (r % pageRows_) * dim_;
        return weights_.data() + r * dim_;
    }

    /** @return the full weight matrix (rows x dim; dense mode only --
     * a tiered table has no contiguous buffer, use copyRowsOut/In). */
    Tensor &
    weights()
    {
        LAZYDP_ASSERT(tiered_ == nullptr,
                      "weights() on a tiered table (use copyRows*)");
        return weights_;
    }
    const Tensor &
    weights() const
    {
        LAZYDP_ASSERT(tiered_ == nullptr,
                      "weights() on a tiered table (use copyRows*)");
        return weights_;
    }

    /**
     * Copy rows [row, row+n) into @p dst, whatever the storage mode
     * (dense memcpy / tiered page walk). Bulk read for checkpointing
     * and snapshot publishing.
     */
    void copyRowsOut(std::uint64_t row, std::uint64_t n,
                     float *dst) const;

    /** Overwrite rows [row, row+n) from @p src (dense or tiered). */
    void copyRowsIn(std::uint64_t row, std::uint64_t n,
                    const float *src);

    /** Promote the pages covering @p rows into the hot tier (no-op
     * unless tiered). Training-thread only; see TieredStore. */
    void
    ensureResident(std::span<const std::uint32_t> rows)
    {
        if (tiered_ != nullptr)
            tiered_->ensureResident(rows);
    }

    /** Async-warm the cold pages covering @p rows (no-op unless
     * tiered; see TieredStore::warmAsync). */
    void
    warmRowsAsync(ThreadPool *pool, std::vector<std::uint32_t> rows)
    {
        if (tiered_ != nullptr)
            tiered_->warmAsync(pool, std::move(rows));
    }

    /** @return table size in bytes (the paper's "model size" metric). */
    std::uint64_t
    bytes() const
    {
        return rows_ * static_cast<std::uint64_t>(dim_) * sizeof(float);
    }

  private:
    std::uint64_t rows_;
    std::size_t dim_;
    Tensor weights_; //!< dense storage (empty in paged/tiered mode)

    bool paged_ = false;
    std::size_t pageRows_ = 0;
    std::vector<std::shared_ptr<const TablePage>> pages_;

    std::unique_ptr<TieredStore> tiered_; //!< out-of-core mode only
};

/**
 * Deduplicate and sort row ids.
 *
 * Shared helper: the optimizers (and LazyDP's lookahead) repeatedly
 * need the unique accessed-row set of a minibatch.
 *
 * @param indices any sequence of row ids
 * @param out cleared and filled with the sorted unique ids
 */
void uniqueRows(std::span<const std::uint32_t> indices,
                std::vector<std::uint32_t> &out);

} // namespace lazydp

#endif // LAZYDP_NN_EMBEDDING_H
