#include "nn/loss.h"

#include <cmath>

#include "common/macros.h"

namespace lazydp {

double
BceWithLogitsLoss::forward(const Tensor &logits,
                           const std::vector<float> &labels)
{
    return forwardSum(logits, labels) /
           static_cast<double>(logits.rows());
}

double
BceWithLogitsLoss::forwardSum(const Tensor &logits,
                              const std::vector<float> &labels)
{
    const std::size_t batch = logits.rows();
    LAZYDP_ASSERT(logits.cols() == 1, "loss expects (batch x 1) logits");
    LAZYDP_ASSERT(labels.size() == batch, "label count mismatch");

    // loss = max(z, 0) - z*y + log(1 + exp(-|z|))
    double total = 0.0;
    for (std::size_t e = 0; e < batch; ++e) {
        const double z = logits.at(e, 0);
        const double y = labels[e];
        total += std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::abs(z)));
    }
    return total;
}

void
BceWithLogitsLoss::backwardPerExample(const Tensor &logits,
                                      const std::vector<float> &labels,
                                      Tensor &d_logits)
{
    const std::size_t batch = logits.rows();
    LAZYDP_ASSERT(logits.cols() == 1, "loss expects (batch x 1) logits");
    LAZYDP_ASSERT(labels.size() == batch, "label count mismatch");
    LAZYDP_ASSERT(d_logits.rows() == batch && d_logits.cols() == 1,
                  "d_logits shape");

    for (std::size_t e = 0; e < batch; ++e) {
        const double z = logits.at(e, 0);
        const double s = 1.0 / (1.0 + std::exp(-z));
        d_logits.at(e, 0) = static_cast<float>(s - labels[e]);
    }
}

} // namespace lazydp
