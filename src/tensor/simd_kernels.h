/**
 * @file
 * Vectorized element-wise kernels.
 *
 * These are the data-streaming primitives whose compute-vs-memory
 * balance the paper characterizes in Section 4.3: the noisy gradient
 * update is `axpy`-shaped (N=2 ops per element, memory bound), while
 * Box-Muller noise sampling performs ~101 vector ops per element
 * (compute bound). `streamWithOps` reproduces the Figure 6 roofline
 * microbenchmark directly.
 *
 * All kernels dispatch through the runtime kernel registry
 * (kernels/kernel_registry.h): a scalar reference backend and an AVX2
 * backend selected at startup via --kernels / LAZYDP_KERNELS / cpuid.
 * Results are bit-stable per backend; across backends element-wise
 * kernels agree exactly or within a few ULP (FMA contraction), blocked
 * reductions within ~1e-12 relative — pinned by tests/kernels/.
 */

#ifndef LAZYDP_TENSOR_SIMD_KERNELS_H
#define LAZYDP_TENSOR_SIMD_KERNELS_H

#include <cstddef>

namespace lazydp {
namespace simd {

/** dst[i] = v */
void fill(float *dst, std::size_t n, float v);

/** y[i] += a * x[i]  — the SGD/noisy model-update kernel (N=2). */
void axpy(float *y, const float *x, std::size_t n, float a);

/** y[i] = a * x[i] + b * y[i] */
void axpby(float *y, const float *x, std::size_t n, float a, float b);

/** dst[i] = a[i] + b[i] */
void add(float *dst, const float *a, const float *b, std::size_t n);

/** dst[i] *= a */
void scale(float *dst, std::size_t n, float a);

/** @return sum_i a[i] * b[i] (double accumulation). */
double dot(const float *a, const float *b, std::size_t n);

/** @return sum_i x[i]^2 (double accumulation). */
double squaredNorm(const float *x, std::size_t n);

/** dst[i] = max(x[i], 0) — ReLU forward. */
void reluForward(float *dst, const float *x, std::size_t n);

/** dx[i] = x[i] > 0 ? dy[i] : 0 — ReLU backward. */
void reluBackward(float *dx, const float *x, const float *dy, std::size_t n);

/**
 * Roofline microbenchmark kernel (paper Figure 6).
 *
 * For each element: load x[i], apply @p n_ops dependent arithmetic
 * operations (alternating multiply/add so neither constant folding nor
 * FMA contraction collapses the chain), store to dst[i]. With
 * n_ops == 2 this behaves like the noisy gradient update; with
 * n_ops == 101 it matches the per-element cost profile of Box-Muller
 * noise sampling.
 *
 * @return flop count performed (n * n_ops), for GFLOPS reporting.
 */
std::size_t streamWithOps(float *dst, const float *x, std::size_t n,
                          int n_ops);

/** @return true if the active registry backend is AVX2. */
bool avx2Enabled();

} // namespace simd
} // namespace lazydp

#endif // LAZYDP_TENSOR_SIMD_KERNELS_H
