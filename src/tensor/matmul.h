/**
 * @file
 * Small GEMM kernels for the DLRM MLP layers.
 *
 * The MLP sizes in the paper's configurations are modest (<=1024 wide),
 * so a register-blocked loop with AVX2 FMA is sufficient; the training
 * bottleneck the paper studies is the embedding table, not the GEMM.
 */

#ifndef LAZYDP_TENSOR_MATMUL_H
#define LAZYDP_TENSOR_MATMUL_H

#include <cstddef>

#include "common/thread_pool.h"
#include "tensor/tensor.h"

namespace lazydp {

/**
 * C = A * B^T.
 *
 * A is (m x k), B is (n x k) — i.e. B is stored row-major with rows of
 * length k, matching a Linear layer whose weight is (out x in) applied
 * to activations (batch x in).
 *
 * @param accumulate when true, adds into C instead of overwriting.
 * @param exec rows of C are partitioned across the context's threads
 */
void matmulABt(const Tensor &a, const Tensor &b, Tensor &c,
               bool accumulate = false,
               ExecContext &exec = ExecContext::serial());

/**
 * C = A * B.
 *
 * A is (m x k), B is (k x n). Used for backward data:
 * dX = dY (batch x out) * W (out x in).
 *
 * @param accumulate when true, adds into C instead of overwriting.
 */
void matmulAB(const Tensor &a, const Tensor &b, Tensor &c,
              bool accumulate = false,
              ExecContext &exec = ExecContext::serial());

/**
 * C = A^T * B.
 *
 * A is (k x m), B is (k x n). Used for weight gradients:
 * dW = dY^T (out x batch) * X (batch x in) expressed as
 * matmulAtB(dY, X, dW).
 *
 * @param accumulate when true, adds into C instead of overwriting.
 */
void matmulAtB(const Tensor &a, const Tensor &b, Tensor &c,
               bool accumulate = false,
               ExecContext &exec = ExecContext::serial());

/** y[r] += bias for every row r of (batch x dim) tensor. */
void addRowBias(Tensor &x, const Tensor &bias);

/** bias_grad[c] = sum_r dy(r, c). */
void reduceRows(const Tensor &dy, Tensor &bias_grad);

} // namespace lazydp

#endif // LAZYDP_TENSOR_MATMUL_H
