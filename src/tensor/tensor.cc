#include "tensor/tensor.h"

#include "common/macros.h"
#include "tensor/simd_kernels.h"

namespace lazydp {

Tensor::Tensor(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), buf_(rows * cols)
{
}

void
Tensor::resize(std::size_t rows, std::size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    buf_.allocate(rows * cols);
}

void
Tensor::resizeNoShrink(std::size_t rows, std::size_t cols)
{
    if (buf_.size() >= rows * cols) {
        rows_ = rows;
        cols_ = cols;
        return;
    }
    resize(rows, cols);
}

void
Tensor::copyFrom(const Tensor &other)
{
    LAZYDP_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                  "copyFrom shape mismatch");
    std::memcpy(buf_.data(), other.buf_.data(), size() * sizeof(float));
}

void
Tensor::fill(float v)
{
    simd::fill(buf_.data(), size(), v);
}

double
Tensor::squaredNorm() const
{
    return simd::squaredNorm(buf_.data(), size());
}

} // namespace lazydp
