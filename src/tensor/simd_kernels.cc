#include "tensor/simd_kernels.h"

#include <algorithm>
#include <cmath>

#include "common/cpu_features.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace lazydp {
namespace simd {

bool
avx2Enabled()
{
#if defined(__AVX2__)
    return cpuFeatures().avx2;
#else
    return false;
#endif
}

void
fill(float *dst, std::size_t n, float v)
{
    std::fill(dst, dst + n, v);
}

void
axpy(float *y, const float *x, std::size_t n, float a)
{
    std::size_t i = 0;
#if defined(__AVX2__)
    const __m256 va = _mm256_set1_ps(a);
    for (; i + 8 <= n; i += 8) {
        __m256 vy = _mm256_loadu_ps(y + i);
        __m256 vx = _mm256_loadu_ps(x + i);
        vy = _mm256_fmadd_ps(va, vx, vy);
        _mm256_storeu_ps(y + i, vy);
    }
#endif
    for (; i < n; ++i)
        y[i] += a * x[i];
}

void
axpby(float *y, const float *x, std::size_t n, float a, float b)
{
    std::size_t i = 0;
#if defined(__AVX2__)
    const __m256 va = _mm256_set1_ps(a);
    const __m256 vb = _mm256_set1_ps(b);
    for (; i + 8 <= n; i += 8) {
        __m256 vy = _mm256_loadu_ps(y + i);
        __m256 vx = _mm256_loadu_ps(x + i);
        vy = _mm256_fmadd_ps(va, vx, _mm256_mul_ps(vb, vy));
        _mm256_storeu_ps(y + i, vy);
    }
#endif
    for (; i < n; ++i)
        y[i] = a * x[i] + b * y[i];
}

void
add(float *dst, const float *a, const float *b, std::size_t n)
{
    std::size_t i = 0;
#if defined(__AVX2__)
    for (; i + 8 <= n; i += 8) {
        __m256 va = _mm256_loadu_ps(a + i);
        __m256 vb = _mm256_loadu_ps(b + i);
        _mm256_storeu_ps(dst + i, _mm256_add_ps(va, vb));
    }
#endif
    for (; i < n; ++i)
        dst[i] = a[i] + b[i];
}

void
scale(float *dst, std::size_t n, float a)
{
    std::size_t i = 0;
#if defined(__AVX2__)
    const __m256 va = _mm256_set1_ps(a);
    for (; i + 8 <= n; i += 8) {
        __m256 v = _mm256_loadu_ps(dst + i);
        _mm256_storeu_ps(dst + i, _mm256_mul_ps(v, va));
    }
#endif
    for (; i < n; ++i)
        dst[i] *= a;
}

double
dot(const float *a, const float *b, std::size_t n)
{
    // Accumulate in double to keep the reduction stable for the large
    // vectors used in per-example norm computations.
    double acc = 0.0;
    std::size_t i = 0;
#if defined(__AVX2__)
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (; i + 8 <= n; i += 8) {
        __m256 va = _mm256_loadu_ps(a + i);
        __m256 vb = _mm256_loadu_ps(b + i);
        __m256 prod = _mm256_mul_ps(va, vb);
        acc0 = _mm256_add_pd(acc0,
                             _mm256_cvtps_pd(_mm256_castps256_ps128(prod)));
        acc1 = _mm256_add_pd(acc1,
                             _mm256_cvtps_pd(_mm256_extractf128_ps(prod, 1)));
    }
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, _mm256_add_pd(acc0, acc1));
    acc = tmp[0] + tmp[1] + tmp[2] + tmp[3];
#endif
    for (; i < n; ++i)
        acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    return acc;
}

double
squaredNorm(const float *x, std::size_t n)
{
    return dot(x, x, n);
}

void
reluForward(float *dst, const float *x, std::size_t n)
{
    std::size_t i = 0;
#if defined(__AVX2__)
    const __m256 zero = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8) {
        __m256 v = _mm256_loadu_ps(x + i);
        _mm256_storeu_ps(dst + i, _mm256_max_ps(v, zero));
    }
#endif
    for (; i < n; ++i)
        dst[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void
reluBackward(float *dx, const float *x, const float *dy, std::size_t n)
{
    std::size_t i = 0;
#if defined(__AVX2__)
    const __m256 zero = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8) {
        __m256 vx = _mm256_loadu_ps(x + i);
        __m256 vdy = _mm256_loadu_ps(dy + i);
        __m256 mask = _mm256_cmp_ps(vx, zero, _CMP_GT_OQ);
        _mm256_storeu_ps(dx + i, _mm256_and_ps(vdy, mask));
    }
#endif
    for (; i < n; ++i)
        dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
}

std::size_t
streamWithOps(float *dst, const float *x, std::size_t n, int n_ops)
{
    // A dependent chain of alternating mul/add per element. The
    // multipliers are chosen so the value neither explodes nor
    // denormalizes over 124 chained ops.
    const float mul_c = 1.000001f;
    const float add_c = 1e-7f;
    std::size_t i = 0;
#if defined(__AVX2__)
    const __m256 vm = _mm256_set1_ps(mul_c);
    const __m256 va = _mm256_set1_ps(add_c);
    // Four independent vector chains per loop iteration so the core is
    // throughput-bound (as Box-Muller's polynomial ILP is), not bound
    // by the latency of one dependent chain.
    for (; i + 32 <= n; i += 32) {
        __m256 v0 = _mm256_loadu_ps(x + i);
        __m256 v1 = _mm256_loadu_ps(x + i + 8);
        __m256 v2 = _mm256_loadu_ps(x + i + 16);
        __m256 v3 = _mm256_loadu_ps(x + i + 24);
        for (int k = 0; k < n_ops; k += 2) {
            v0 = _mm256_mul_ps(v0, vm);
            v1 = _mm256_mul_ps(v1, vm);
            v2 = _mm256_mul_ps(v2, vm);
            v3 = _mm256_mul_ps(v3, vm);
            if (k + 1 < n_ops) {
                v0 = _mm256_add_ps(v0, va);
                v1 = _mm256_add_ps(v1, va);
                v2 = _mm256_add_ps(v2, va);
                v3 = _mm256_add_ps(v3, va);
            }
        }
        _mm256_storeu_ps(dst + i, v0);
        _mm256_storeu_ps(dst + i + 8, v1);
        _mm256_storeu_ps(dst + i + 16, v2);
        _mm256_storeu_ps(dst + i + 24, v3);
    }
    for (; i + 8 <= n; i += 8) {
        __m256 v = _mm256_loadu_ps(x + i);
        for (int k = 0; k < n_ops; k += 2) {
            v = _mm256_mul_ps(v, vm);
            if (k + 1 < n_ops)
                v = _mm256_add_ps(v, va);
        }
        _mm256_storeu_ps(dst + i, v);
    }
#endif
    for (; i < n; ++i) {
        float v = x[i];
        for (int k = 0; k < n_ops; k += 2) {
            v = v * mul_c;
            if (k + 1 < n_ops)
                v = v + add_c;
        }
        dst[i] = v;
    }
    return n * static_cast<std::size_t>(n_ops);
}

} // namespace simd
} // namespace lazydp
