#include "tensor/simd_kernels.h"

#include "kernels/kernel_registry.h"

// Thin forwarding layer: the historical lazydp::simd:: entry points now
// dispatch through the runtime kernel registry (src/kernels/), so every
// existing call site follows the --kernels / LAZYDP_KERNELS selection
// without changes. New code may call lazydp::kernels() directly.

namespace lazydp {
namespace simd {

bool
avx2Enabled()
{
    return kernels().backend == KernelBackend::Avx2;
}

void
fill(float *dst, std::size_t n, float v)
{
    kernels().fill(dst, n, v);
}

void
axpy(float *y, const float *x, std::size_t n, float a)
{
    kernels().axpy(y, x, n, a);
}

void
axpby(float *y, const float *x, std::size_t n, float a, float b)
{
    kernels().axpby(y, x, n, a, b);
}

void
add(float *dst, const float *a, const float *b, std::size_t n)
{
    kernels().add(dst, a, b, n);
}

void
scale(float *dst, std::size_t n, float a)
{
    kernels().scale(dst, n, a);
}

double
dot(const float *a, const float *b, std::size_t n)
{
    return kernels().dot(a, b, n);
}

double
squaredNorm(const float *x, std::size_t n)
{
    return kernels().squaredNorm(x, n);
}

void
reluForward(float *dst, const float *x, std::size_t n)
{
    kernels().reluForward(dst, x, n);
}

void
reluBackward(float *dx, const float *x, const float *dy, std::size_t n)
{
    kernels().reluBackward(dx, x, dy, n);
}

std::size_t
streamWithOps(float *dst, const float *x, std::size_t n, int n_ops)
{
    return kernels().streamWithOps(dst, x, n, n_ops);
}

} // namespace simd
} // namespace lazydp
