#include "tensor/matmul.h"

#include "common/macros.h"
#include "kernels/kernel_registry.h"
#include "tensor/simd_kernels.h"

// The DLRM GEMMs are embarrassingly parallel across output rows; each
// row's accumulation stays within one thread, so the results are
// bit-identical at any thread count (only the row partition changes).

namespace lazydp {

void
matmulABt(const Tensor &a, const Tensor &b, Tensor &c, bool accumulate,
          ExecContext &exec)
{
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.rows();
    LAZYDP_ASSERT(b.cols() == k, "matmulABt inner-dim mismatch");
    LAZYDP_ASSERT(c.rows() == m && c.cols() == n, "matmulABt out shape");

    const KernelTable &kt = kernels();
    parallelFor(exec, m, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            kt.gemvDotRow(a.data() + i * k, b.data(), c.data() + i * n,
                          n, k, accumulate);
        }
    });
}

void
matmulAB(const Tensor &a, const Tensor &b, Tensor &c, bool accumulate,
         ExecContext &exec)
{
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    LAZYDP_ASSERT(b.rows() == k, "matmulAB inner-dim mismatch");
    LAZYDP_ASSERT(c.rows() == m && c.cols() == n, "matmulAB out shape");

    if (!accumulate)
        c.zero();
    // i-k-j loop order: the inner loop is an axpy over contiguous rows
    // of B and C, which vectorizes well; rows of C are independent.
    parallelFor(exec, m, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            float *crow = c.data() + i * n;
            const float *arow = a.data() + i * k;
            for (std::size_t kk = 0; kk < k; ++kk) {
                const float av = arow[kk];
                if (av == 0.0f)
                    continue;
                simd::axpy(crow, b.data() + kk * n, n, av);
            }
        }
    });
}

void
matmulAtB(const Tensor &a, const Tensor &b, Tensor &c, bool accumulate,
          ExecContext &exec)
{
    const std::size_t k = a.rows();
    const std::size_t m = a.cols();
    const std::size_t n = b.cols();
    LAZYDP_ASSERT(b.rows() == k, "matmulAtB inner-dim mismatch");
    LAZYDP_ASSERT(c.rows() == m && c.cols() == n, "matmulAtB out shape");

    if (!accumulate)
        c.zero();
    // parallelize over output rows i (each accumulates its own row of
    // C); the column walk over A is strided but race-free
    parallelFor(exec, m, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            float *crow = c.data() + i * n;
            for (std::size_t kk = 0; kk < k; ++kk) {
                const float av = a.data()[kk * m + i];
                if (av == 0.0f)
                    continue;
                simd::axpy(crow, b.data() + kk * n, n, av);
            }
        }
    });
}

void
addRowBias(Tensor &x, const Tensor &bias)
{
    LAZYDP_ASSERT(bias.rows() == 1 && bias.cols() == x.cols(),
                  "addRowBias shape mismatch");
    for (std::size_t r = 0; r < x.rows(); ++r)
        simd::add(x.data() + r * x.cols(), x.data() + r * x.cols(),
                  bias.data(), x.cols());
}

void
reduceRows(const Tensor &dy, Tensor &bias_grad)
{
    LAZYDP_ASSERT(bias_grad.rows() == 1 && bias_grad.cols() == dy.cols(),
                  "reduceRows shape mismatch");
    bias_grad.zero();
    for (std::size_t r = 0; r < dy.rows(); ++r)
        simd::add(bias_grad.data(), bias_grad.data(),
                  dy.data() + r * dy.cols(), dy.cols());
}

} // namespace lazydp
