/**
 * @file
 * Minimal dense 2-D float tensor.
 *
 * Deliberately small: row-major storage, aligned, with just the
 * operations the DLRM training stack needs. Higher-rank shapes are
 * expressed as (rows, cols) views by the layers themselves.
 */

#ifndef LAZYDP_TENSOR_TENSOR_H
#define LAZYDP_TENSOR_TENSOR_H

#include <cstddef>
#include <span>

#include "tensor/aligned_buffer.h"

namespace lazydp {

/** Row-major 2-D float matrix with 64-byte aligned storage. */
class Tensor
{
  public:
    Tensor() = default;

    /** Allocate a zero-filled @p rows x @p cols matrix. */
    Tensor(std::size_t rows, std::size_t cols);

    /** Reallocate (contents reset to zero). */
    void resize(std::size_t rows, std::size_t cols);

    /**
     * Reshape without shrinking the allocation: if the current buffer
     * already holds rows*cols elements, only the dimensions change and
     * existing contents are left stale (callers overwrite). Avoids
     * realloc thrash for per-layer scratch buffers that alternate
     * between shapes every backward pass.
     */
    void resizeNoShrink(std::size_t rows, std::size_t cols);

    /** Zero all elements without reallocating. */
    void zero() { buf_.zero(); }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return rows_ * cols_; }

    float *data() { return buf_.data(); }
    const float *data() const { return buf_.data(); }

    /** @return mutable view of row @p r. */
    std::span<float>
    row(std::size_t r)
    {
        return {buf_.data() + r * cols_, cols_};
    }

    /** @return read-only view of row @p r. */
    std::span<const float>
    row(std::size_t r) const
    {
        return {buf_.data() + r * cols_, cols_};
    }

    float &
    at(std::size_t r, std::size_t c)
    {
        return buf_[r * cols_ + c];
    }

    float
    at(std::size_t r, std::size_t c) const
    {
        return buf_[r * cols_ + c];
    }

    /** Element-wise copy from @p other (shapes must match). */
    void copyFrom(const Tensor &other);

    /** Fill every element with @p v. */
    void fill(float v);

    /** @return sum of squares of all elements (double accumulation). */
    double squaredNorm() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    AlignedBuffer<float> buf_;
};

} // namespace lazydp

#endif // LAZYDP_TENSOR_TENSOR_H
