/**
 * @file
 * Cache-line / SIMD aligned heap buffer.
 *
 * All model weights, gradients and noise staging areas live in these
 * buffers so the AVX kernels can use aligned loads and the streaming
 * update kernels see the same access behaviour the paper measures.
 */

#ifndef LAZYDP_TENSOR_ALIGNED_BUFFER_H
#define LAZYDP_TENSOR_ALIGNED_BUFFER_H

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "common/macros.h"

namespace lazydp {

/** Alignment used by every numeric buffer (one cache line / ZMM lane). */
inline constexpr std::size_t kBufferAlignment = 64;

/**
 * Owning, 64-byte aligned array of trivially copyable elements.
 *
 * Move-only. Contents are zero-initialized on allocation.
 */
template <typename T>
class AlignedBuffer
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "AlignedBuffer only holds trivially copyable types");

  public:
    AlignedBuffer() = default;

    /** Allocate @p n zero-initialized elements. */
    explicit AlignedBuffer(std::size_t n) { allocate(n); }

    AlignedBuffer(const AlignedBuffer &) = delete;
    AlignedBuffer &operator=(const AlignedBuffer &) = delete;

    AlignedBuffer(AlignedBuffer &&other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0))
    {
    }

    AlignedBuffer &
    operator=(AlignedBuffer &&other) noexcept
    {
        if (this != &other) {
            release();
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
        }
        return *this;
    }

    ~AlignedBuffer() { release(); }

    /** Reallocate to @p n zero-initialized elements. */
    void
    allocate(std::size_t n)
    {
        release();
        if (n == 0)
            return;
        // Round the byte size up to a multiple of the alignment, as
        // required by std::aligned_alloc.
        std::size_t bytes = n * sizeof(T);
        bytes = (bytes + kBufferAlignment - 1) / kBufferAlignment *
                kBufferAlignment;
        data_ = static_cast<T *>(std::aligned_alloc(kBufferAlignment, bytes));
        if (data_ == nullptr)
            throw std::bad_alloc();
        std::memset(data_, 0, bytes);
        size_ = n;
    }

    /** Zero the whole buffer. */
    void
    zero()
    {
        if (data_)
            std::memset(data_, 0, size_ * sizeof(T));
    }

    T *data() { return data_; }
    const T *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &
    operator[](std::size_t i)
    {
        return data_[i];
    }

    const T &
    operator[](std::size_t i) const
    {
        return data_[i];
    }

    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

  private:
    void
    release()
    {
        std::free(data_);
        data_ = nullptr;
        size_ = 0;
    }

    T *data_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace lazydp

#endif // LAZYDP_TENSOR_ALIGNED_BUFFER_H
