/**
 * @file
 * lazydp_trace_validate — structural checker for telemetry artifacts.
 *
 * Two modes:
 *
 *  - Default: validate a Chrome-trace JSON file (--trace from
 *    lazydp_serve / lazydp_train). Checks the file is well-formed
 *    JSON, has a traceEvents array, every "X" (complete) event carries
 *    ts and a non-negative dur, any stray "B"/"E" duration events pair
 *    per (tid, name), and — with --require-cats — that every listed
 *    category appears at least once (comma-separated, e.g.
 *    "trainer,serve,tier,governor"). Exit 0 on pass, 1 with a
 *    diagnostic on the first failure.
 *
 *  - --jsonl: validate a StatsSampler time series (--stats-out).
 *    Every line must parse as one JSON object; --min-lines gates the
 *    line count (CI uses 1 to assert the sampler scraped at all).
 *
 * The parser is a minimal recursive-descent JSON reader (no external
 * dependency; CI runs this in containers without python).
 */

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/logging.h"
#include "common/string_util.h"

using namespace lazydp;

namespace {

/** Parsed JSON value (only the shapes the trace format uses). */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue *
    get(const std::string &key) const
    {
        const auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

/** Recursive-descent JSON parser over an in-memory buffer. Failure
 *  reporting is by position: fail() raises a fatal with byte offset. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage after top-level value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        fatal("JSON parse error at byte ", pos_, ": ", why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 text_[pos_] + "'");
        ++pos_;
    }

    JsonValue
    parseValue()
    {
        const char c = peek();
        switch (c) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': return parseString();
        case 't':
        case 'f': return parseBool();
        case 'n': return parseNull();
        default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            JsonValue key = parseString();
            expect(':');
            v.object.emplace(std::move(key.str), parseValue());
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.type = JsonValue::Type::String;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                case '"': c = '"'; break;
                case '\\': c = '\\'; break;
                case '/': c = '/'; break;
                case 'b': c = '\b'; break;
                case 'f': c = '\f'; break;
                case 'n': c = '\n'; break;
                case 'r': c = '\r'; break;
                case 't': c = '\t'; break;
                case 'u':
                    // Trace names are ASCII; keep the escape verbatim
                    // rather than decoding UTF-16 surrogates.
                    if (pos_ + 4 > text_.size())
                        fail("truncated \\u escape");
                    v.str.append("\\u");
                    v.str.append(text_, pos_, 4);
                    pos_ += 4;
                    continue;
                default: fail("bad escape character");
                }
            }
            v.str.push_back(c);
        }
        if (pos_ >= text_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    JsonValue
    parseNull()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            fail("bad literal");
        pos_ += 4;
        JsonValue v;
        v.type = JsonValue::Type::Null;
        return v;
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        JsonValue v;
        v.type = JsonValue::Type::Number;
        try {
            v.number = std::stod(text_.substr(start, pos_ - start));
        } catch (const std::exception &) {
            fail("malformed number");
        }
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

std::string
joinSet(const std::set<std::string> &items, const char *sep)
{
    std::string out;
    for (const std::string &s : items) {
        if (!out.empty())
            out.append(sep);
        out.append(s);
    }
    return out;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open ", path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Trace-mode validation; fatal (exit 1) on the first violation. */
void
validateTrace(const std::string &path,
              const std::vector<std::string> &requiredCats)
{
    const std::string text = readFile(path);
    JsonParser parser(text);
    const JsonValue root = parser.parse();
    if (root.type != JsonValue::Type::Object)
        fatal(path, ": top level is not an object");
    const JsonValue *events = root.get("traceEvents");
    if (events == nullptr ||
        events->type != JsonValue::Type::Array)
        fatal(path, ": missing traceEvents array");

    std::set<std::string> cats;
    // Stray B/E events (the recorder emits only X/i/M, but the
    // validator enforces the format, not the producer): every "B" must
    // pair with an "E" per (tid, name) stack discipline.
    std::map<std::pair<double, std::string>, std::uint64_t> open;
    std::uint64_t spans = 0;
    std::uint64_t instants = 0;

    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &e = events->array[i];
        if (e.type != JsonValue::Type::Object)
            fatal(path, ": traceEvents[", i, "] is not an object");
        const JsonValue *ph = e.get("ph");
        if (ph == nullptr || ph->type != JsonValue::Type::String)
            fatal(path, ": traceEvents[", i, "] has no ph");
        const JsonValue *name = e.get("name");
        const std::string nm =
            name != nullptr ? name->str : std::string();
        if (ph->str == "M")
            continue; // metadata carries no cat/ts
        const JsonValue *cat = e.get("cat");
        if (cat != nullptr)
            cats.insert(cat->str);
        const JsonValue *ts = e.get("ts");
        if (ts == nullptr || ts->type != JsonValue::Type::Number)
            fatal(path, ": traceEvents[", i, "] (", nm,
                  ") has no numeric ts");
        if (ph->str == "X") {
            const JsonValue *dur = e.get("dur");
            if (dur == nullptr ||
                dur->type != JsonValue::Type::Number)
                fatal(path, ": complete event ", i, " (", nm,
                      ") has no dur");
            if (dur->number < 0.0)
                fatal(path, ": complete event ", i, " (", nm,
                      ") has negative dur");
            ++spans;
        } else if (ph->str == "i" || ph->str == "I") {
            ++instants;
        } else if (ph->str == "B" || ph->str == "E") {
            const JsonValue *tid = e.get("tid");
            const double t =
                tid != nullptr ? tid->number : -1.0;
            const auto key = std::make_pair(t, nm);
            if (ph->str == "B") {
                ++open[key];
            } else {
                if (open[key] == 0)
                    fatal(path, ": E event ", i, " (", nm,
                          ") without a matching B");
                --open[key];
            }
        }
    }
    for (const auto &kv : open)
        if (kv.second != 0)
            fatal(path, ": ", kv.second, " unclosed B event(s) for '",
                  kv.first.second, "'");
    for (const std::string &need : requiredCats)
        if (cats.find(need) == cats.end())
            fatal(path, ": required category '", need,
                  "' never appears (have: ", joinSet(cats, ","), ")");

    inform("trace ok: ", events->array.size(), " events (", spans,
           " spans, ", instants, " instants), categories: ",
           joinSet(cats, ","));
}

/** JSONL-mode validation for StatsSampler output. */
void
validateJsonl(const std::string &path, std::uint64_t minLines)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open ", path);
    std::string line;
    std::uint64_t lines = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ++lines;
        JsonParser parser(line);
        const JsonValue v = parser.parse();
        if (v.type != JsonValue::Type::Object)
            fatal(path, ": line ", lines, " is not a JSON object");
    }
    if (lines < minLines)
        fatal(path, ": ", lines, " JSONL line(s), need >= ", minLines);
    inform("stats ok: ", lines, " scrape line(s)");
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(
        argc, argv,
        std::vector<FlagSpec>{
            {"require-cats", "comma-separated trace categories that "
                             "must each appear at least once"},
            {"jsonl", "validate a stats JSONL time series instead of "
                      "a Chrome trace"},
            {"min-lines", "jsonl mode: minimum line count (default "
                          "1)"},
            {"help", "print this help"},
        });
    if (args.getBool("help", false)) {
        std::fputs(
            args.helpText("lazydp_trace_validate",
                          "validate Chrome-trace / stats-JSONL "
                          "telemetry artifacts")
                .c_str(),
            stdout);
        return 0;
    }
    if (args.positional().size() != 1)
        fatal("usage: lazydp_trace_validate [--require-cats=a,b,...] "
              "[--jsonl [--min-lines=N]] <file>");
    const std::string path = args.positional()[0];

    if (args.getBool("jsonl", false)) {
        validateJsonl(path, args.getU64("min-lines", 1));
        return 0;
    }
    std::vector<std::string> cats;
    const std::string need = args.getString("require-cats", "");
    if (!need.empty())
        cats = split(need, ',');
    validateTrace(path, cats);
    return 0;
}
