/**
 * @file
 * lazydp_train — the command-line training driver.
 *
 * One binary to run any engine on any model preset / dataset skew /
 * scale, print a stage breakdown and (for DP engines) the privacy
 * budget, and optionally checkpoint. This is the entry point a user
 * who just cloned the repository is expected to reach for.
 *
 * Examples:
 *   lazydp_train --algo=lazydp --model=mlperf --table-mb=960 \
 *                --batch=2048 --iters=20 --sigma=1.1 --clip=1.0
 *   lazydp_train --algo=dpsgd-f --model=rmc1 --skew=high --iters=10
 *   lazydp_train --algo=lazydp --weight-decay=0.05 --save=ckpt.bin
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/cli.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/table_printer.h"
#include "core/factory.h"
#include "core/lazydp.h"
#include "data/data_loader.h"
#include "dp/accountant.h"
#include "io/checkpoint.h"
#include "obs/obs_cli.h"
#include "serve/snapshot_store.h"
#include "train/trainer.h"

using namespace lazydp;

int
main(int argc, char **argv)
{
    const CliArgs args(
        argc, argv,
        obs::withObsFlags(withTierFlags(std::vector<FlagSpec>{
         {"algo", "engine: sgd|dpsgd-b|dpsgd-r|dpsgd-f|eana|lazydp|"
                  "lazydp-noans"},
         {"model", "preset: mlperf|mlperf-full|mlperf-hetero|rmc1|rmc2|"
                   "rmc3|tiny"},
         {"table-mb", "total embedding-table megabytes"},
         {"batch", "mini-batch (lot) size"},
         {"iters", "training iterations"},
         {"pooling", "embedding lookups per table per example"},
         {"lr", "learning rate"},
         {"sigma", "DP noise multiplier"},
         {"clip", "per-example gradient clipping norm C"},
         {"weight-decay", "L2 weight decay lambda (deferred by LazyDP)"},
         {"skew", "table-access skew: uniform|low|medium|high|zipf"},
         {"seed", "model/data seed"},
         {"population", "privacy accounting: training population N"},
         {"delta", "privacy accounting: target delta"},
         {"threads", "execution width (0 = all hardware threads; "
                     "bit-identical model for every N)"},
         {"pipeline", "on|off: overlap noise prep + batch prefetch "
                      "with compute (bit-identical model)"},
         {"replicas", "1|2|4 lot-sharded data-parallel workers "
                      "(bit-identical model)"},
         {"kernels", "SIMD backend: scalar|avx2|auto (scalar is the "
                     "bit-exact golden reference)"},
         {"publish-every", "publish a serving snapshot every N "
                           "iterations (0 = off): measures the publish "
                           "cost a live serving tier would add"},
         {"snapshot", "snapshot store mode: full|delta (with "
                      "--publish-every)"},
         {"save", "write a checkpoint here (LazyDP: full training "
                  "state)"},
         {"csv", "print the result table as CSV"},
         {"help", "print this listing"}})));
    if (args.has("help")) {
        std::printf("%s",
                    args.helpText("lazydp_train",
                                  "command-line DP training driver "
                                  "(one binary, any engine/model/skew)")
                        .c_str());
        return 0;
    }

    const std::string algo_name = args.getString("algo", "lazydp");
    const std::uint64_t table_mb = args.getU64("table-mb", 96);
    ModelConfig model_cfg =
        modelPreset(args.getString("model", "mlperf"), table_mb << 20);
    if (args.has("pooling"))
        model_cfg.pooling = args.getU64("pooling", model_cfg.pooling);

    const std::size_t batch = args.getU64("batch", 1024);
    const std::uint64_t iters = args.getU64("iters", 20);
    if (iters == 0)
        fatal("--iters must be positive");
    const std::uint64_t seed = args.getU64("seed", 1);

    TrainHyper hyper;
    hyper.lr = static_cast<float>(args.getDouble("lr", 0.05));
    hyper.noiseMultiplier =
        static_cast<float>(args.getDouble("sigma", 1.0));
    hyper.clipNorm = static_cast<float>(args.getDouble("clip", 1.0));
    hyper.weightDecay =
        static_cast<float>(args.getDouble("weight-decay", 0.0));
    hyper.noiseSeed = seed * 0x9E3779B9u + 7;

    // Out-of-core mode: --cold-path switches the embedding tables to
    // the DRAM-hot / file-cold tiered backend. Same trained model bits
    // as all-DRAM; only residency traffic and wall time change.
    const std::string cold_path = args.getString("cold-path", "");
    if (args.has("hot-mb") && cold_path.empty())
        fatal("--hot-mb needs --cold-path (it sizes the tiered "
              "tables' DRAM budget)");
    std::unique_ptr<DlrmModel> model_holder;
    if (!cold_path.empty()) {
        DlrmModel::TieredModelOptions tier;
        tier.hotBytes = args.getU64("hot-mb", 64) << 20;
        tier.coldDir = cold_path;
        tier.prefetch = args.getBool("prefetch", true);
        model_holder =
            std::make_unique<DlrmModel>(model_cfg, seed, tier);
    } else {
        model_holder = std::make_unique<DlrmModel>(model_cfg, seed);
    }
    DlrmModel &model = *model_holder;
    DatasetConfig data_cfg;
    data_cfg.numDense = model_cfg.numDense;
    data_cfg.numTables = model_cfg.numTables;
    data_cfg.rowsPerTable = model_cfg.rowsPerTable;
    data_cfg.rowsPerTableVec = model_cfg.rowsPerTableVec;
    data_cfg.pooling = model_cfg.pooling;
    data_cfg.batchSize = batch;
    data_cfg.access = accessPreset(args.getString("skew", "uniform"));
    data_cfg.seed = seed + 0xDA7A;
    SyntheticDataset dataset(data_cfg);
    SequentialLoader loader(dataset);

    // Telemetry: --trace / --stats-out turn on the metrics registry and
    // (for stats) the background sampler for the duration of the run.
    obs::ObsSession obs(obs::obsOptionsFromCli(args));

    const std::size_t threads = args.getThreads(1);
    const bool pipeline = args.getBool("pipeline", false);
    const std::size_t replicas = args.getU64("replicas", 1);
    const std::string kernels_name = args.applyKernels();
    ThreadPool pool(threads);
    ExecContext exec(&pool);

    auto algo = makeAlgorithm(algo_name, model, hyper);
    inform("training ", algo->name(), " on ", model_cfg.name, " (",
           humanBytes(model.tableBytes()), " tables, batch ", batch,
           ", ", iters, " iters, ", threads, " threads, pipeline ",
           pipeline ? "on" : "off", ", replicas ", replicas,
           ", kernels ", kernels_name, ")");
    if (model.tiered())
        inform("out-of-core tables: hot tier ",
               humanBytes(args.getU64("hot-mb", 64) << 20),
               ", cold tier under ", cold_path, ", prefetch ",
               args.getBool("prefetch", true) ? "on" : "off");

    Trainer trainer(*algo, loader, &exec);
    TrainOptions options;
    options.pipeline = pipeline;
    options.replicas = replicas;
    options.recordIterSeconds = true;

    // Optional snapshot publishing: no serving tier here, but the
    // publish cost lands on the training loop either way -- this is
    // how a user measures what --publish-every would cost them.
    const std::uint64_t publish_every = args.getU64("publish-every", 0);
    const std::string snapshot_mode =
        args.getString("snapshot", "full");
    if (snapshot_mode != "full" && snapshot_mode != "delta")
        fatal("--snapshot must be full or delta, got ", snapshot_mode);
    std::unique_ptr<ModelSnapshotStore> store;
    if (publish_every > 0) {
        SnapshotOptions snap_opts;
        snap_opts.mode = snapshot_mode == "delta" ? SnapshotMode::Delta
                                                  : SnapshotMode::Full;
        store = std::make_unique<ModelSnapshotStore>(snap_opts);
        options.publishEveryIters = publish_every;
        options.snapshotStore = store.get();
    }
    const TrainResult result = trainer.run(iters, options);

    // All traced work is done (lanes are idle once run() returns):
    // flush the trace + final stats scrape before reporting.
    obs.finish();

    TablePrinter table("Result: " + algo->name());
    table.setHeader({"metric", "value"});
    table.addRow({"sec/iter (wall)",
                  TablePrinter::num(result.secondsPerIteration(), 4)});
    // Under --pipeline the overlapped prepare stages count into busy
    // but not wall, so busy/iter can exceed wall/iter.
    table.addRow({"sec/iter (busy)",
                  TablePrinter::num(result.busySeconds() /
                                        static_cast<double>(iters),
                                    4)});
    const auto iter_pct =
        stats::computePercentiles(result.iterSeconds);
    table.addRow({"sec/iter p95",
                  TablePrinter::num(iter_pct.p95, 4)});
    table.addRow({"sec/iter p99",
                  TablePrinter::num(iter_pct.p99, 4)});
    table.addRow({"total wall s",
                  TablePrinter::num(result.wallSeconds +
                                        result.finalizeSeconds,
                                    2)});
    table.addRow({"finalize s",
                  TablePrinter::num(result.finalizeSeconds, 4)});
    table.addRow({"loss first",
                  TablePrinter::num(result.losses.front(), 4)});
    table.addRow({"loss last",
                  TablePrinter::num(result.losses.back(), 4)});
    for (const auto &[stage, secs] : result.timer.breakdown()) {
        if (secs <= 0.0)
            continue;
        table.addRow(
            {"stage: " + stage,
             TablePrinter::num(secs / static_cast<double>(iters), 4)});
    }
    if (result.publishes > 0) {
        table.addRow({"snapshot mode", snapshot_mode});
        table.addRow({"publishes",
                      TablePrinter::num(
                          static_cast<double>(result.publishes), 0)});
        table.addRow(
            {"publish ms mean",
             TablePrinter::num(result.publishSeconds * 1e3 /
                                   static_cast<double>(result.publishes),
                               3)});
        table.addRow({"publish rows copied",
                      TablePrinter::num(
                          static_cast<double>(result.rowsCopied), 0)});
        table.addRow({"publish pages shared",
                      TablePrinter::num(
                          static_cast<double>(result.pagesShared), 0)});
    }
    if (model.tiered()) {
        const TierStats &ts = result.tierStats;
        table.addRow({"tier hit rate",
                      TablePrinter::num(ts.hitRate(), 4)});
        table.addRow({"tier promotions",
                      TablePrinter::num(
                          static_cast<double>(ts.promotions), 0)});
        table.addRow({"tier promotions warmed",
                      TablePrinter::num(
                          static_cast<double>(ts.warmedPromotions), 0)});
        table.addRow({"tier evictions",
                      TablePrinter::num(
                          static_cast<double>(ts.evictions), 0)});
        table.addRow({"tier write-backs",
                      TablePrinter::num(
                          static_cast<double>(ts.writebacks), 0)});
        table.addRow({"tier overcommits",
                      TablePrinter::num(
                          static_cast<double>(ts.overcommits), 0)});
    }
    if (args.getBool("csv", false))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    // Privacy accounting for the DP engines.
    if (algo_name != "sgd") {
        const std::uint64_t population =
            args.getU64("population", 10'000'000);
        const double delta = args.getDouble("delta", 1e-6);
        RdpAccountant acc(hyper.noiseMultiplier,
                          static_cast<double>(batch) /
                              static_cast<double>(population));
        acc.addSteps(iters);
        inform("privacy: epsilon = ", acc.epsilon(delta),
               " at delta = ", delta, " (population ", population,
               ", Poisson-sampling assumption)");
        if (algo_name == "eana")
            warn("EANA's guarantee is weaker than this accounting "
                 "suggests for skewed data (see paper Section 7.4)");
    }

    if (args.has("save")) {
        const std::string path = args.getString("save", "");
        if (auto *lazy = dynamic_cast<LazyDpAlgorithm *>(algo.get())) {
            io::saveTraining(path, model, *lazy, iters + 1);
            inform("saved LazyDP training checkpoint to ", path);
        } else {
            io::saveModel(path, model);
            inform("saved model weights to ", path);
        }
    }
    return 0;
}
