/**
 * @file
 * lazydp_serve — the train-and-serve driver.
 *
 * Turns the trainer into an online system: the main thread trains a DP
 * engine and publishes versioned model snapshots every
 * --publish-every iterations, while --serve-threads serve lanes score
 * deadline-batched single-user queries against the latest snapshot and
 * a load generator measures throughput, tail latency (p50/p95/p99/
 * p999) and SLO attainment. Admission control (--queue-cap,
 * --shed-policy) bounds the per-lane queues and sheds low-priority
 * work under overload; --slo-us expires stale requests unscored;
 * --scenario scripts the arrival profile (flash crowds, diurnal
 * ramps, skew drift, mixed two-class traffic). With --train-iters=0
 * it serves the freshly initialized model only (serve-only baseline).
 *
 * Examples:
 *   lazydp_serve --algo=lazydp --model=mlperf --train-iters=50 \
 *                --publish-every=10 --serve-threads=2 --requests=2000
 *   lazydp_serve --train-iters=0 --serve-qps=500 --max-batch=16 \
 *                --max-delay-us=500 --serve-skew=high
 *   lazydp_serve --train-iters=0 --serve-qps=3000 --scenario=flash \
 *                --queue-cap=16 --shed-policy=drop-oldest --slo-us=5000
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <thread>

#include "common/cli.h"
#include "obs/obs_cli.h"
#include "common/cpu_set.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "core/factory.h"
#include "data/data_loader.h"
#include "serve/isolation_governor.h"
#include "serve/load_generator.h"
#include "serve/serve_engine.h"
#include "serve/snapshot_store.h"
#include "train/trainer.h"

using namespace lazydp;

int
main(int argc, char **argv)
{
    const CliArgs args(
        argc, argv,
        obs::withObsFlags(withTierFlags(std::vector<FlagSpec>{
         {"algo", "training engine: sgd|dpsgd-b|dpsgd-r|dpsgd-f|eana|"
                  "lazydp|lazydp-noans"},
         {"model", "preset: mlperf|mlperf-full|mlperf-hetero|rmc1|rmc2|"
                   "rmc3|tiny"},
         {"table-mb", "total embedding-table megabytes"},
         {"batch", "training mini-batch (lot) size"},
         {"train-iters", "training iterations (0 = serve-only: score "
                         "the freshly initialized model)"},
         {"lr", "learning rate"},
         {"sigma", "DP noise multiplier"},
         {"clip", "per-example gradient clipping norm C"},
         {"skew", "TRAINING data skew: uniform|low|medium|high|zipf"},
         {"seed", "model/data/query seed"},
         {"threads", "training execution width (0 = all hardware "
                     "threads)"},
         {"pipeline", "on|off: training stage pipeline"},
         {"replicas", "1|2|4 training data-parallel workers"},
         {"kernels", "SIMD backend: scalar|avx2|auto"},
         {"publish-every", "publish a model snapshot every N training "
                           "iterations"},
         {"snapshot", "snapshot store mode: full (dense O(model) "
                      "copies) | delta (O(dirty rows) copy-on-write "
                      "pages)"},
         {"seal-pages", "on|off: delta mode only -- mprotect published "
                        "pages read-only (torn writes fault)"},
         {"dump-scores", "write every request's score to this file "
                         "(hex floats, one per line; bit-exact)"},
         {"serve-threads", "number of serve lanes (dedicated inference "
                           "workers)"},
         {"serve-qps", "open-loop arrival rate in queries/s (0 = "
                       "closed loop)"},
         {"serve-concurrency", "closed loop: clients with one request "
                               "in flight each"},
         {"requests", "total queries the load generator issues"},
         {"max-batch", "micro-batch coalescing cap (1 = no batching)"},
         {"max-delay-us", "batching deadline: max microseconds the "
                          "oldest query waits"},
         {"queue-cap", "admission control: per-lane queue-depth cap "
                       "(0 = unbounded, shedding off)"},
         {"shed-policy", "victim at a full queue: reject (newest) | "
                         "drop-oldest (lowest priority first either "
                         "way)"},
         {"slo-us", "SLO class deadline in microseconds (0 = none); "
                    "queued requests past it expire unscored"},
         {"scenario", "traffic profile: steady|diurnal|flash|drift|"
                      "mixed (rate-modulated ones need --serve-qps)"},
         {"flash-x", "flash scenario: burst rate multiplier"},
         {"low-frac", "fraction of requests in the low-priority class "
                      "(mixed scenario defaults to 0.5)"},
         {"low-slo-us", "low-priority class deadline in microseconds"},
         {"serve-skew", "QUERY skew: uniform|low|medium|high|zipf"},
         {"isolation", "train-vs-serve policy: none|pin|throttle|"
                       "pin+throttle (pin: disjoint core sets; "
                       "throttle: attainment-driven trainer pacing)"},
         {"serve-cores", "CPU list the serve lanes are pinned to "
                         "(taskset syntax, e.g. 6-7); pin policies "
                         "default to a split of the host's CPUs"},
         {"train-cores", "CPU list the trainer is pinned to (loop "
                         "workers, train lanes and the main thread)"},
         {"gov-window-us", "governor: attainment sampling window in "
                           "microseconds"},
         {"gov-engage", "governor: engage the throttle when window "
                        "attainment drops below this fraction"},
         {"gov-release", "governor: release it once attainment "
                         "recovers to this fraction"},
         {"gov-iters-per-sec", "governor: trainer iteration pace while "
                               "throttled"},
         {"csv", "print the result table as CSV"},
         {"help", "print this listing"}})));
    if (args.has("help")) {
        std::printf("%s",
                    args.helpText("lazydp_serve",
                                  "concurrent train-and-serve driver: "
                                  "versioned snapshots + deadline-"
                                  "batched DLRM inference under load")
                        .c_str());
        return 0;
    }

    const std::string algo_name = args.getString("algo", "lazydp");
    const std::uint64_t table_mb = args.getU64("table-mb", 96);
    const ModelConfig model_cfg =
        modelPreset(args.getString("model", "mlperf"), table_mb << 20);
    const std::size_t batch = args.getU64("batch", 1024);
    const std::uint64_t train_iters = args.getU64("train-iters", 50);
    const std::uint64_t seed = args.getU64("seed", 1);
    const std::uint64_t publish_every = args.getU64("publish-every", 10);
    if (publish_every == 0)
        fatal("--publish-every must be positive");

    TrainHyper hyper;
    hyper.lr = static_cast<float>(args.getDouble("lr", 0.05));
    hyper.noiseMultiplier =
        static_cast<float>(args.getDouble("sigma", 1.0));
    hyper.clipNorm = static_cast<float>(args.getDouble("clip", 1.0));
    hyper.noiseSeed = seed * 0x9E3779B9u + 7;

    // Out-of-core training tables (--cold-path): snapshots still copy
    // rows out page by page, so serving is unaffected beyond the copy
    // source; the trained bits match all-DRAM exactly.
    const std::string cold_path = args.getString("cold-path", "");
    if (args.has("hot-mb") && cold_path.empty())
        fatal("--hot-mb needs --cold-path (it sizes the tiered "
              "tables' DRAM budget)");
    std::unique_ptr<DlrmModel> model_holder;
    if (!cold_path.empty()) {
        DlrmModel::TieredModelOptions tier;
        tier.hotBytes = args.getU64("hot-mb", 64) << 20;
        tier.coldDir = cold_path;
        tier.prefetch = args.getBool("prefetch", true);
        model_holder =
            std::make_unique<DlrmModel>(model_cfg, seed, tier);
    } else {
        model_holder = std::make_unique<DlrmModel>(model_cfg, seed);
    }
    DlrmModel &model = *model_holder;
    DatasetConfig data_cfg;
    data_cfg.numDense = model_cfg.numDense;
    data_cfg.numTables = model_cfg.numTables;
    data_cfg.rowsPerTable = model_cfg.rowsPerTable;
    data_cfg.rowsPerTableVec = model_cfg.rowsPerTableVec;
    data_cfg.pooling = model_cfg.pooling;
    data_cfg.batchSize = batch;
    data_cfg.access = accessPreset(args.getString("skew", "uniform"));
    data_cfg.seed = seed + 0xDA7A;
    SyntheticDataset dataset(data_cfg);
    SequentialLoader loader(dataset);

    const std::size_t threads = args.getThreads(1);
    const std::string kernels_name = args.applyKernels();
    ThreadPool pool(threads);
    ExecContext exec(&pool);

    // --- isolation policy --------------------------------------------
    const IsolationPolicy isolation =
        parseIsolationPolicy(args.getString("isolation", "none"));
    const std::string serve_cores_arg =
        args.getString("serve-cores", "");
    const std::string train_cores_arg =
        args.getString("train-cores", "");
    if (!policyPins(isolation) &&
        (!serve_cores_arg.empty() || !train_cores_arg.empty()))
        fatal("--serve-cores/--train-cores only apply with "
              "--isolation=pin or pin+throttle");

    // --- telemetry ----------------------------------------------------
    // The registry is always on in this driver: the serve/train mirrors
    // are the governor's shared scrape feed and cost a relaxed add per
    // completion. A throttling policy forces the sampler lane into
    // existence (the governor attaches to it below) and clamps the
    // cadence to the governor window so attainment windows stay fine-
    // grained even when --stats-interval-us asks for a slower series.
    obs::ObsOptions obs_opts = obs::obsOptionsFromCli(args);
    obs_opts.enableMetrics = true;
    if (policyThrottles(isolation)) {
        obs_opts.forceSampler = true;
        const std::uint64_t gov_window =
            args.getU64("gov-window-us", 5000);
        const std::uint64_t base = obs_opts.statsIntervalUs == 0
                                       ? 100000
                                       : obs_opts.statsIntervalUs;
        obs_opts.statsIntervalUs = std::min(base, gov_window);
    }
    obs::ObsSession obs(obs_opts);

    // --- serving tier -------------------------------------------------
    const std::string snapshot_mode =
        args.getString("snapshot", "full");
    if (snapshot_mode != "full" && snapshot_mode != "delta")
        fatal("--snapshot must be full or delta, got ", snapshot_mode);
    SnapshotOptions snap_opts;
    snap_opts.mode = snapshot_mode == "delta" ? SnapshotMode::Delta
                                              : SnapshotMode::Full;
    snap_opts.sealPages = args.getBool("seal-pages", false);
    ModelSnapshotStore store(snap_opts);
    // Version 1 is the initial (iteration-0) model so serving has a
    // snapshot from the first request on, train or no train.
    store.publish(model, 0);

    ServeOptions serve_opts;
    serve_opts.threads = args.getU64("serve-threads", 2);
    serve_opts.batch.maxBatch = args.getU64("max-batch", 32);
    serve_opts.batch.maxDelayUs = args.getU64("max-delay-us", 200);
    serve_opts.batch.queueCap = args.getU64("queue-cap", 0);
    // An EXPLICIT zero cap is degenerate: read literally, a zero-depth
    // queue admits nothing -- every request (including any probe that
    // measures capacity) would shed. The internal 0-means-unbounded
    // encoding is not a CLI contract, so reject the ambiguity loudly.
    if (args.has("queue-cap") && serve_opts.batch.queueCap == 0)
        fatal("--queue-cap=0 is degenerate (a zero-depth queue admits "
              "nothing); omit the flag for an unbounded queue or pass "
              "a positive cap");
    const std::string shed_policy =
        args.getString("shed-policy", "reject");
    if (shed_policy == "reject")
        serve_opts.batch.shedPolicy = ShedPolicy::RejectNewest;
    else if (shed_policy == "drop-oldest")
        serve_opts.batch.shedPolicy = ShedPolicy::DropOldest;
    else
        fatal("--shed-policy must be reject or drop-oldest, got ",
              shed_policy);

    // Pin BEFORE the serve lanes spawn (reservations would retro-pin
    // running lanes anyway, but placing threads at birth is cleaner).
    CpuSet train_cores, serve_cores;
    if (policyPins(isolation)) {
        if (!CpuSet::parse(serve_cores_arg, &serve_cores))
            fatal("--serve-cores: cannot parse '", serve_cores_arg,
                  "' (want a taskset-style list, e.g. 0-3,6)");
        if (!CpuSet::parse(train_cores_arg, &train_cores))
            fatal("--train-cores: cannot parse '", train_cores_arg,
                  "' (want a taskset-style list, e.g. 0-3,6)");
        if (serve_cores.empty() && train_cores.empty()) {
            const CoreSplit split = defaultCoreSplit(serve_opts.threads);
            train_cores = split.train;
            serve_cores = split.serve;
        }
        applyCorePinning(pool, train_cores, serve_cores);
    }
    ServeEngine engine(store, model_cfg, pool, serve_opts);

    LoadOptions load_opts;
    load_opts.requests = args.getU64("requests", 1000);
    load_opts.qps = args.getDouble("serve-qps", 0.0);
    load_opts.concurrency = args.getU64("serve-concurrency", 4);
    load_opts.seed = seed + 0x5E12;
    load_opts.access =
        accessPreset(args.getString("serve-skew", "uniform"));
    load_opts.scenario =
        scenarioFromString(args.getString("scenario", "steady"));
    if (load_opts.qps <= 0.0 &&
        (load_opts.scenario == Scenario::Diurnal ||
         load_opts.scenario == Scenario::FlashCrowd))
        fatal("--scenario=", scenarioName(load_opts.scenario),
              " modulates the arrival rate; it needs an open loop "
              "(--serve-qps > 0)");
    load_opts.slo.deadlineUs = args.getU64("slo-us", 0);
    load_opts.slo.priority = 1;
    load_opts.lowSlo.deadlineUs =
        args.getU64("low-slo-us", load_opts.slo.deadlineUs);
    load_opts.lowSlo.priority = 0;
    load_opts.lowFraction = args.getDouble("low-frac", 0.0);
    if (load_opts.lowFraction < 0.0 || load_opts.lowFraction > 1.0)
        fatal("--low-frac is a fraction and must lie in [0, 1], got ",
              load_opts.lowFraction);
    load_opts.flashMultiplier = args.getDouble("flash-x", 8.0);
    const std::string dump_scores = args.getString("dump-scores", "");
    load_opts.collectScores = !dump_scores.empty();
    LoadGenerator generator(engine, model_cfg, load_opts);

    // Attainment-driven trainer throttle: rides the shared StatsSampler
    // scrape lane (one cadence for the JSONL series AND the feedback
    // windows) instead of a private sampling thread, and paces the
    // trainer through TrainOptions::iterationGate while engaged.
    std::unique_ptr<IsolationGovernor> governor;
    if (policyThrottles(isolation)) {
        GovernorOptions gov;
        gov.windowUs = args.getU64("gov-window-us", 5000);
        gov.engageBelow = args.getDouble("gov-engage", 0.90);
        gov.releaseAbove = args.getDouble("gov-release", 0.97);
        gov.throttledItersPerSec =
            args.getDouble("gov-iters-per-sec", 200.0);
        gov.startSampler = false; // the shared sampler drives it
        if (gov.engageBelow > gov.releaseAbove)
            fatal("--gov-engage (", gov.engageBelow,
                  ") must not exceed --gov-release (",
                  gov.releaseAbove, ")");
        governor = std::make_unique<IsolationGovernor>(
            [&engine] { return engine.stats(); }, gov);
        governor->attachTo(*obs.sampler());
    }

    inform("serving ", model_cfg.name, " (",
           humanBytes(model.tableBytes()), " tables) with ",
           serve_opts.threads, " serve lanes, max-batch ",
           serve_opts.batch.maxBatch, ", max-delay ",
           serve_opts.batch.maxDelayUs, " us, queue-cap ",
           serve_opts.batch.queueCap, " (", shed_policy, "), slo ",
           load_opts.slo.deadlineUs, " us, ",
           load_opts.qps > 0.0 ? "open" : "closed", " loop, scenario ",
           scenarioName(load_opts.scenario), ", ",
           load_opts.requests, " requests; training ", algo_name,
           " for ", train_iters, " iters (publish every ",
           publish_every, ", ", snapshot_mode, " snapshots",
           snap_opts.sealPages ? ", sealed" : "", "), kernels ",
           kernels_name, ", isolation ",
           isolationPolicyName(isolation));
    if (policyPins(isolation))
        inform("pinning: train cores [", train_cores.toString(),
               "], serve cores [", serve_cores.toString(), "]",
               cpuPinningSupported() ? "" :
               " (unsupported on this platform: no-op)");

    // --- concurrent load + training ----------------------------------
    LoadReport report;
    std::thread load_thread(
        [&generator, &report] { report = generator.run(); });

    TrainResult train_result;
    if (train_iters > 0) {
        auto algo = makeAlgorithm(algo_name, model, hyper);
        Trainer trainer(*algo, loader, &exec);
        TrainOptions options;
        options.pipeline = args.getBool("pipeline", false);
        options.replicas = args.getU64("replicas", 1);
        options.publishEveryIters = publish_every;
        options.snapshotStore = &store;
        options.recordIterSeconds = true;
        if (governor != nullptr)
            options.iterationGate = governor->gate();
        train_result = trainer.run(train_iters, options);
    }
    load_thread.join();
    if (governor != nullptr)
        governor->stop();
    engine.stop();
    // Telemetry teardown BEFORE the governor leaves scope: the sampler
    // thread fans scrapes into the attached governor, so it must join
    // first (finish() also flushes the trace and the stats file).
    obs.finish();

    // --- sanity (the CI smoke leans on these) -------------------------
    if (report.completed != load_opts.requests)
        fatal("completed ", report.completed, " of ",
              load_opts.requests, " requests (a request was silently "
              "dropped or left hanging)");
    // Status conservation: every completed request carries exactly one
    // outcome -- a mismatch means a drop path invented or lost one.
    if (report.ok + report.shed + report.expired + report.shutdown !=
        report.completed)
        fatal("status counts (", report.ok, " ok + ", report.shed,
              " shed + ", report.expired, " expired + ",
              report.shutdown, " shutdown) != ", report.completed,
              " completed");
    if (serve_opts.batch.queueCap == 0 &&
        load_opts.slo.deadlineUs == 0 && report.ok != report.completed)
        fatal("shedding and deadlines are OFF yet only ", report.ok,
              " of ", report.completed, " requests were scored");
    if (report.qps() <= 0.0)
        fatal("zero serving throughput");
    // Startup publishes version 1; training must add exactly one
    // version per --publish-every iterations (a vacuous "> 0" check
    // would pass on the startup publish alone and miss a broken
    // Trainer publish path).
    const std::uint64_t expected_version =
        1 + train_iters / publish_every;
    if (store.version() != expected_version)
        fatal("expected snapshot version ", expected_version,
              " after training, got ", store.version());

    // --- report -------------------------------------------------------
    const ServeStats sstats = engine.stats();
    TablePrinter table("Serve: " + model_cfg.name + " (" + algo_name +
                       ")");
    table.setHeader({"metric", "value"});
    table.addRow({"requests", TablePrinter::num(report.completed, 0)});
    table.addRow({"scenario", scenarioName(load_opts.scenario)});
    table.addRow({"throughput qps", TablePrinter::num(report.qps(), 1)});
    table.addRow({"slo attainment %",
                  TablePrinter::num(report.attainment() * 100.0, 2)});
    table.addRow({"requests ok",
                  TablePrinter::num(static_cast<double>(report.ok), 0)});
    table.addRow({"requests shed",
                  TablePrinter::num(static_cast<double>(report.shed),
                                    0)});
    table.addRow({"requests expired",
                  TablePrinter::num(
                      static_cast<double>(report.expired), 0)});
    if (report.shutdown > 0)
        table.addRow({"requests shutdown",
                      TablePrinter::num(
                          static_cast<double>(report.shutdown), 0)});
    if (report.classes.size() > 1) {
        for (const auto &cls : report.classes) {
            const std::string tag =
                "class p" + TablePrinter::num(
                                static_cast<double>(cls.priority), 0);
            table.addRow(
                {tag + " attainment %",
                 TablePrinter::num(cls.attainment() * 100.0, 2)});
            table.addRow({tag + " issued/ok/shed",
                          TablePrinter::num(
                              static_cast<double>(cls.issued), 0) +
                              "/" +
                              TablePrinter::num(
                                  static_cast<double>(cls.ok), 0) +
                              "/" +
                              TablePrinter::num(
                                  static_cast<double>(cls.shed), 0)});
        }
    }
    table.addRow(
        {"latency p50 ms",
         TablePrinter::num(report.latency.p50 * 1e3, 3)});
    table.addRow(
        {"latency p95 ms",
         TablePrinter::num(report.latency.p95 * 1e3, 3)});
    table.addRow(
        {"latency p99 ms",
         TablePrinter::num(report.latency.p99 * 1e3, 3)});
    table.addRow(
        {"latency p999 ms",
         TablePrinter::num(report.latency.p999 * 1e3, 3)});
    table.addRow({"mean micro-batch",
                  TablePrinter::num(sstats.meanBatch(), 2)});
    table.addRow({"micro-batches",
                  TablePrinter::num(
                      static_cast<double>(sstats.batches), 0)});
    table.addRow({"batches stolen",
                  TablePrinter::num(
                      static_cast<double>(sstats.stolenBatches), 0)});
    table.addRow({"isolation", isolationPolicyName(isolation)});
    if (governor != nullptr) {
        const GovernorStats gstats = governor->stats();
        table.addRow({"gov windows",
                      TablePrinter::num(
                          static_cast<double>(gstats.windows), 0) +
                          " (" +
                          TablePrinter::num(
                              static_cast<double>(
                                  gstats.noTrafficWindows), 0) +
                          " no-traffic)"});
        table.addRow({"gov engagements",
                      TablePrinter::num(
                          static_cast<double>(gstats.engagements), 0)});
        table.addRow({"gov pause ms",
                      TablePrinter::num(gstats.pausedSeconds * 1e3,
                                        3)});
        table.addRow({"gov window attainment %",
                      TablePrinter::num(gstats.lastAttainment * 100.0,
                                        2)});
    }
    if (obs.sampler() != nullptr)
        table.addRow({"stats scrapes",
                      TablePrinter::num(
                          static_cast<double>(obs.sampler()->scrapes()),
                          0)});
    table.addRow({"snapshot version",
                  TablePrinter::num(
                      static_cast<double>(store.version()), 0)});
    table.addRow({"versions served",
                  TablePrinter::num(
                      static_cast<double>(report.minVersion), 0) +
                      ".." +
                      TablePrinter::num(
                          static_cast<double>(report.maxVersion), 0)});
    if (train_iters > 0) {
        table.addRow(
            {"train sec/iter",
             TablePrinter::num(train_result.secondsPerIteration(), 4)});
        const auto iter_pct =
            stats::computePercentiles(train_result.iterSeconds);
        table.addRow({"train sec/iter p99",
                      TablePrinter::num(iter_pct.p99, 4)});
        if (model.tiered()) {
            table.addRow(
                {"tier hit rate",
                 TablePrinter::num(train_result.tierStats.hitRate(),
                                   4)});
            table.addRow(
                {"tier write-backs",
                 TablePrinter::num(
                     static_cast<double>(
                         train_result.tierStats.writebacks),
                     0)});
        }
    }
    // Publish-side costs over the store's lifetime (startup publish +
    // every training publish): what serving freshness cost the writer.
    const PublishTotals ptotals = store.totals();
    table.addRow({"snapshot mode", snapshot_mode});
    table.addRow({"publishes",
                  TablePrinter::num(
                      static_cast<double>(ptotals.publishes), 0)});
    table.addRow({"publish ms mean",
                  TablePrinter::num(
                      ptotals.publishes == 0
                          ? 0.0
                          : ptotals.seconds * 1e3 /
                                static_cast<double>(ptotals.publishes),
                      3)});
    table.addRow({"publish rows copied",
                  TablePrinter::num(
                      static_cast<double>(ptotals.rowsCopied), 0)});
    table.addRow({"publish pages shared",
                  TablePrinter::num(
                      static_cast<double>(ptotals.pagesShared), 0)});
    table.addRow({"buffers recycled",
                  TablePrinter::num(
                      static_cast<double>(ptotals.snapshotsRecycled +
                                          ptotals.pagesRecycled),
                      0)});
    if (snap_opts.sealPages) {
        // --seal-pages hardening is only real on mmap-backed pages;
        // TablePage silently falls back to the heap where mmap is
        // unavailable, so count what the CURRENT snapshot actually
        // got -- a nonzero fallback means published pages are NOT
        // fault-on-write protected despite the flag.
        std::uint64_t sealed_pages = 0;
        std::uint64_t heap_fallback = 0;
        if (const auto snap = store.current()) {
            for (const auto &t : snap->model.tables()) {
                if (!t.paged())
                    continue;
                for (const auto &pg : t.pages()) {
                    if (pg == nullptr)
                        continue;
                    if (pg->mmapped())
                        ++sealed_pages;
                    else
                        ++heap_fallback;
                }
            }
        }
        table.addRow({"sealed pages",
                      TablePrinter::num(
                          static_cast<double>(sealed_pages), 0)});
        table.addRow({"seal fallbacks (heap)",
                      TablePrinter::num(
                          static_cast<double>(heap_fallback), 0)});
        if (heap_fallback > 0)
            warn("--seal-pages: ", heap_fallback, " published pages "
                 "fell back to heap allocation and are NOT mprotect-"
                 "sealed (mmap unavailable?)");
    }
    if (args.getBool("csv", false))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    if (!dump_scores.empty()) {
        std::FILE *f = std::fopen(dump_scores.c_str(), "w");
        if (f == nullptr)
            fatal("cannot open ", dump_scores, " for writing");
        // %a is an exact binary representation: two dumps compare
        // bit-identical iff every served score did.
        for (const float s : report.scores)
            std::fprintf(f, "%a\n", static_cast<double>(s));
        std::fclose(f);
        inform("wrote ", report.scores.size(), " scores to ",
               dump_scores);
    }
    return 0;
}
