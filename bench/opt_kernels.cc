/**
 * @file
 * Per-primitive scalar-vs-SIMD kernel benchmark (paper Sections 4.2/6).
 *
 * The paper reports its tuned noise + update stage is 8.2x faster than
 * stock PyTorch operators; this bench quantifies the same effect for
 * every primitive in the runtime kernel registry: both backends run the
 * SAME registry entry points the training loop dispatches through, so a
 * speedup measured here is the speedup --kernels=avx2 buys the hot
 * loops. The stock-library noise baseline (mt19937 +
 * std::normal_distribution) is kept for the paper's ablation anchor.
 *
 * Emits BENCH_kernels.json (see --out) with seconds-per-call and the
 * avx2-over-scalar speedup per primitive; the CI smoke step runs it at
 * reduced --seconds to catch dispatch regressions.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/cpu_features.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "kernels/kernel_registry.h"
#include "rng/philox.h"
#include "tensor/aligned_buffer.h"

using namespace lazydp;

namespace {

/** One primitive's measurement across backends. */
struct PrimResult
{
    std::string name;
    double scalarSec = 0.0; //!< seconds per call
    double avx2Sec = 0.0;   //!< 0 when the backend is unavailable
    double unit = 0.0;      //!< work per call (elements or flop)
    const char *unitName = "elems";

    double
    speedup() const
    {
        return avx2Sec > 0.0 ? scalarSec / avx2Sec : 0.0;
    }
};

/** Repeat fn until `min_seconds` elapsed; @return seconds per call. */
template <typename Fn>
double
timeIt(double min_seconds, Fn &&fn)
{
    fn(); // warm the caches / page in the buffers
    std::size_t calls = 0;
    WallTimer t;
    do {
        fn();
        ++calls;
    } while (t.seconds() < min_seconds);
    return t.seconds() / static_cast<double>(calls);
}

/** Measure one primitive under both backends. */
template <typename Fn>
PrimResult
measure(const std::string &name, double min_seconds, double unit,
        const char *unit_name, Fn &&run)
{
    PrimResult r;
    r.name = name;
    r.unit = unit;
    r.unitName = unit_name;
    const KernelTable *scalar = kernelTable(KernelBackend::Scalar);
    r.scalarSec =
        timeIt(min_seconds, [&] { run(*scalar); });
    if (const KernelTable *avx2 = kernelTable(KernelBackend::Avx2))
        r.avx2Sec = timeIt(min_seconds, [&] { run(*avx2); });
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv, {"seconds", "out", "help"});
    if (args.has("help")) {
        std::printf("opt_kernels [--seconds=F (min time per "
                    "measurement)] [--out=BENCH_kernels.json]\n");
        return 0;
    }
    const double min_seconds = args.getDouble("seconds", 0.2);
    const std::string out_path =
        args.getString("out", "BENCH_kernels.json");

    std::printf("\n################################################\n");
    std::printf("# Kernel-registry ablation (paper Sections 4.2/6):\n");
    std::printf("# every registry primitive, scalar vs avx2, plus the\n");
    std::printf("# naive stdlib noise baseline. The same entry points\n");
    std::printf("# the training loop dispatches through.\n");
    std::printf("# avx2 backend: %s\n",
                kernelBackendAvailable(KernelBackend::Avx2)
                    ? "available"
                    : "UNAVAILABLE (scalar-only host/build)");
    std::printf("################################################\n");

    std::vector<PrimResult> results;

    // --- streaming update (axpy): the N=2 memory-bound model update
    {
        const std::size_t n = std::size_t{1} << 22;
        static AlignedBuffer<float> y(n), x(n);
        for (std::size_t i = 0; i < n; ++i) {
            y[i] = 1.0f;
            x[i] = 0.5f;
        }
        results.push_back(measure(
            "axpy_update", min_seconds, static_cast<double>(n), "elems",
            [&](const KernelTable &kt) {
                kt.axpy(y.data(), x.data(), n, -1e-7f);
            }));
    }

    // --- fused square-accumulate: per-example gradient norms
    {
        const std::size_t n = std::size_t{1} << 22;
        static AlignedBuffer<float> x(n);
        for (std::size_t i = 0; i < n; ++i)
            x[i] = 0.001f * static_cast<float>(i % 997);
        static volatile double sink = 0.0;
        results.push_back(measure(
            "norms_sq", min_seconds, static_cast<double>(n), "elems",
            [&](const KernelTable &kt) {
                sink = kt.squaredNorm(x.data(), n);
            }));
    }

    // --- GEMM row kernel: the MLP forward/backward inner loop
    {
        const std::size_t k = 512, ncols = 512, m = 32;
        static AlignedBuffer<float> a(m * k), b(ncols * k), c(m * ncols);
        std::mt19937 rng(7);
        std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
        for (std::size_t i = 0; i < m * k; ++i)
            a[i] = dist(rng);
        for (std::size_t i = 0; i < ncols * k; ++i)
            b[i] = dist(rng);
        const double flop = 2.0 * static_cast<double>(m * ncols * k);
        results.push_back(measure(
            "gemm_abt", min_seconds, flop, "flop",
            [&](const KernelTable &kt) {
                for (std::size_t i = 0; i < m; ++i)
                    kt.gemvDotRow(a.data() + i * k, b.data(),
                                  c.data() + i * ncols, ncols, k, false);
            }));
    }

    // --- keyed Box-Muller fill: the compute-bound noise sampling
    {
        const std::size_t n = std::size_t{1} << 20;
        static AlignedBuffer<float> buf(n);
        const Philox4x32 philox(42);
        results.push_back(measure(
            "gaussian_fill", min_seconds, static_cast<double>(n),
            "samples", [&](const KernelTable &kt) {
                kt.gaussianFillKeyed(philox, 1, 0, buf.data(), n, 1.0f,
                                     1.0f, false);
            }));
    }

    // --- embedding pooling: DLRM sparse forward
    {
        const std::size_t rows = std::size_t{1} << 15, dim = 128;
        const std::size_t pooling = 64, batch = 512;
        static AlignedBuffer<float> table(rows * dim), out(batch * dim);
        for (std::size_t i = 0; i < rows * dim; ++i)
            table[i] = 0.25f;
        std::vector<std::uint32_t> idx(batch * pooling);
        std::mt19937 rng(11);
        for (auto &v : idx)
            v = static_cast<std::uint32_t>(rng() % rows);
        results.push_back(measure(
            "embed_pool", min_seconds,
            static_cast<double>(batch * pooling * dim), "elems",
            [&](const KernelTable &kt) {
                for (std::size_t e = 0; e < batch; ++e)
                    kt.poolRows(out.data() + e * dim, table.data(),
                                idx.data() + e * pooling, pooling, dim);
            }));
    }

    // --- sparse scatter-update: LazyDP merged row update
    {
        const std::size_t rows = std::size_t{1} << 15, dim = 128;
        const std::size_t touched = 8192;
        static AlignedBuffer<float> table(rows * dim),
            vals(touched * dim);
        for (std::size_t i = 0; i < touched * dim; ++i)
            vals[i] = 0.125f;
        std::vector<std::uint32_t> idx(touched);
        for (std::size_t i = 0; i < touched; ++i)
            idx[i] = static_cast<std::uint32_t>(i * (rows / touched));
        results.push_back(measure(
            "sparse_scatter", min_seconds,
            static_cast<double>(touched * dim), "elems",
            [&](const KernelTable &kt) {
                kt.scatterAxpyRows(table.data(), idx.data(), vals.data(),
                                   touched, dim, -1e-7f);
            }));
    }

    // --- stock-library noise baseline (the paper's 8.2x anchor)
    double naive_sec = 0.0;
    {
        const std::size_t n = std::size_t{1} << 20;
        static AlignedBuffer<float> buf(n);
        std::mt19937 rng(42);
        std::normal_distribution<float> dist(0.0f, 1.0f);
        naive_sec = timeIt(min_seconds, [&] {
            for (std::size_t i = 0; i < n; ++i)
                buf[i] = dist(rng);
        });
    }

    TablePrinter table("Kernel registry: scalar vs avx2");
    table.setHeader({"primitive", "scalar s/call", "avx2 s/call",
                     "speedup"});
    for (const auto &r : results) {
        table.addRow({r.name, TablePrinter::num(r.scalarSec, 6),
                      r.avx2Sec > 0.0 ? TablePrinter::num(r.avx2Sec, 6)
                                      : std::string("n/a"),
                      r.avx2Sec > 0.0
                          ? TablePrinter::num(r.speedup(), 2) + "x"
                          : std::string("n/a")});
    }
    table.addRow({"noise_naive_stdlib", TablePrinter::num(naive_sec, 6),
                  "n/a", "n/a"});
    table.print(std::cout);

    std::ofstream os(out_path);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    os << "{\n  \"bench\": \"opt_kernels\",\n";
    os << "  \"avx2_available\": "
       << (kernelBackendAvailable(KernelBackend::Avx2) ? "true"
                                                       : "false")
       << ",\n";
    os << "  \"min_seconds_per_measurement\": " << min_seconds << ",\n";
    os << "  \"primitives\": {\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        os << "    \"" << r.name << "\": { \"scalar_sec_per_call\": "
           << r.scalarSec << ", \"avx2_sec_per_call\": " << r.avx2Sec
           << ", \"speedup\": " << r.speedup() << ", \"work_per_call\": "
           << r.unit << ", \"work_unit\": \"" << r.unitName << "\" }"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  },\n";
    os << "  \"noise_naive_stdlib_sec_per_call\": " << naive_sec
       << ",\n";
    os << "  \"comment\": \"same registry entry points the training "
          "loop dispatches through; speedup is what --kernels=avx2 "
          "buys each hot loop on this host\"\n";
    os << "}\n";
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
