/**
 * @file
 * Paper Section 4.2 / 6 ablation: how much the "heavily optimized
 * baseline" matters. The paper reports its tuned noise + update stage
 * is 8.2x faster than stock PyTorch operators (13.4x end-to-end
 * with threading). Here: naive single-thread std::mt19937 +
 * std::normal_distribution versus scalar Box-Muller versus the
 * vectorized Philox/AVX2 kernel, single- and multi-threaded, plus the
 * streaming update kernel.
 *
 * google-benchmark binary; each row reports samples/s or GB/s.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "common/thread_pool.h"
#include "rng/noise_provider.h"
#include "tensor/aligned_buffer.h"
#include "tensor/simd_kernels.h"
#include "tensor/tensor.h"

namespace {

constexpr std::size_t kRows = 1u << 15;
constexpr std::size_t kDim = 128;
constexpr std::size_t kElems = kRows * kDim; // 16 MB of noise

lazydp::AlignedBuffer<float> &
buffer()
{
    static lazydp::AlignedBuffer<float> buf(kElems);
    return buf;
}

/** Stock-library baseline: mt19937 + std::normal_distribution. */
void
BM_NoiseNaiveStdlib(benchmark::State &state)
{
    std::mt19937 rng(42);
    std::normal_distribution<float> dist(0.0f, 1.0f);
    auto &buf = buffer();
    for (auto _ : state) {
        for (std::size_t i = 0; i < kElems; ++i)
            buf[i] = dist(rng);
        benchmark::ClobberMemory();
    }
    state.counters["Msamples/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * kElems / 1e6,
        benchmark::Counter::kIsRate);
}

/** Scalar Philox Box-Muller (libm transcendentals). */
void
BM_NoiseScalarBoxMuller(benchmark::State &state)
{
    lazydp::NoiseProvider np(42, lazydp::GaussianKernel::Scalar);
    auto &buf = buffer();
    for (auto _ : state) {
        for (std::size_t r = 0; r < kRows; ++r)
            np.rowNoise(1, 0, r, 1.0f, 1.0f, buf.data() + r * kDim,
                        kDim, false);
        benchmark::ClobberMemory();
    }
    state.counters["Msamples/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * kElems / 1e6,
        benchmark::Counter::kIsRate);
}

/** Vectorized AVX2 Philox Box-Muller, single thread. */
void
BM_NoiseAvx2(benchmark::State &state)
{
    lazydp::NoiseProvider np(42, lazydp::GaussianKernel::Auto);
    auto &buf = buffer();
    for (auto _ : state) {
        for (std::size_t r = 0; r < kRows; ++r)
            np.rowNoise(1, 0, r, 1.0f, 1.0f, buf.data() + r * kDim,
                        kDim, false);
        benchmark::ClobberMemory();
    }
    state.counters["Msamples/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * kElems / 1e6,
        benchmark::Counter::kIsRate);
}

/** Vectorized + thread pool across all cores (the production path). */
void
BM_NoiseAvx2Parallel(benchmark::State &state)
{
    lazydp::NoiseProvider np(42, lazydp::GaussianKernel::Auto);
    static lazydp::ThreadPool pool(lazydp::hardwareThreads());
    lazydp::ExecContext exec(&pool);
    auto &buf = buffer();
    std::vector<std::uint32_t> rows(kRows);
    for (std::size_t r = 0; r < kRows; ++r)
        rows[r] = static_cast<std::uint32_t>(r);
    for (auto _ : state) {
        np.rowNoiseBatch(1, 0, rows, 1.0f, 1.0f, buf.data(), kDim,
                         false, exec);
        benchmark::ClobberMemory();
    }
    state.counters["Msamples/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * kElems / 1e6,
        benchmark::Counter::kIsRate);
}

/** Streaming model-update kernel (N=2), single thread. */
void
BM_StreamingUpdate(benchmark::State &state)
{
    static lazydp::Tensor weights(1u << 14, 512);
    static lazydp::Tensor update(1u << 14, 512);
    for (auto _ : state) {
        lazydp::simd::axpy(weights.data(), update.data(),
                           weights.size(), -0.01f);
        benchmark::ClobberMemory();
    }
    state.counters["GB/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * weights.size() * 4.0 *
            3.0 / 1e9,
        benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_NoiseNaiveStdlib)->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);
BENCHMARK(BM_NoiseScalarBoxMuller)->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);
BENCHMARK(BM_NoiseAvx2)->Unit(benchmark::kMillisecond)->MinTime(0.2);
BENCHMARK(BM_NoiseAvx2Parallel)->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);
BENCHMARK(BM_StreamingUpdate)->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);

int
main(int argc, char **argv)
{
    std::printf("\n################################################\n");
    std::printf("# Optimized-baseline ablation (paper Sections 4.2/6):\n");
    std::printf("# naive stdlib noise vs scalar Box-Muller vs AVX2\n");
    std::printf("# Philox vs AVX2+pool; paper reports its tuned\n");
    std::printf("# baseline as 8.2x (13.4x threaded) over stock ops.\n");
    std::printf("################################################\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
