#include "bench_common.h"

#include <cmath>
#include <cstdio>
#include <memory>

#include "common/string_util.h"
#include "core/lazydp.h"
#include "data/data_loader.h"
#include "kernels/kernel_registry.h"
#include "train/trainer.h"

namespace lazydp {
namespace bench {

DatasetConfig
datasetFor(const ModelConfig &model, const AccessConfig &access,
           std::size_t batch, std::uint64_t seed)
{
    DatasetConfig dc;
    dc.numDense = model.numDense;
    dc.numTables = model.numTables;
    dc.rowsPerTable = model.rowsPerTable;
    dc.rowsPerTableVec = model.rowsPerTableVec;
    dc.pooling = model.pooling;
    dc.batchSize = batch;
    dc.access = access;
    dc.seed = seed;
    return dc;
}

double
expectedUniqueRows(std::uint64_t rows, std::size_t batch,
                   std::size_t pooling)
{
    // E[unique] = R * (1 - (1 - 1/R)^(B*p)) under uniform draws.
    const double r = static_cast<double>(rows);
    const double draws = static_cast<double>(batch * pooling);
    return r * (1.0 - std::pow(1.0 - 1.0 / r, draws));
}

double
expectedDelay(const ModelConfig &model, std::size_t batch)
{
    const double unique =
        expectedUniqueRows(model.rowsPerTable, batch, model.pooling);
    return std::max(1.0,
                    static_cast<double>(model.rowsPerTable) / unique);
}

RunStats
runMeasured(const RunSpec &spec)
{
    std::unique_ptr<DlrmModel> model_holder;
    if (!spec.coldDir.empty()) {
        DlrmModel::TieredModelOptions tier;
        tier.hotBytes = spec.hotBytes;
        tier.coldDir = spec.coldDir;
        tier.prefetch = spec.tierPrefetch;
        model_holder = std::make_unique<DlrmModel>(spec.model,
                                                   spec.modelSeed, tier);
    } else {
        model_holder =
            std::make_unique<DlrmModel>(spec.model, spec.modelSeed);
    }
    DlrmModel &model = *model_holder;
    SyntheticDataset dataset(
        datasetFor(spec.model, spec.access, spec.batch, spec.dataSeed));
    auto algo = makeAlgorithm(spec.algo, model, spec.hyper);

    ThreadPool pool(spec.threads == 0 ? hardwareThreads()
                                      : spec.threads);
    ExecContext exec(&pool);

    std::uint64_t start_iter = 0;
    if (spec.warmHistory) {
        if (auto *lazy = dynamic_cast<LazyDpAlgorithm *>(algo.get())) {
            // pretend training has been running long enough that every
            // pending-age is in steady state
            const double delay = expectedDelay(spec.model, spec.batch);
            start_iter =
                static_cast<std::uint64_t>(std::ceil(delay)) * 4 + 16;
            lazy->warmStartHistory(start_iter, delay, 0xA9E5);
        }
    }

    SequentialLoader loader(dataset);
    TrainOptions options;
    options.pipeline = spec.pipeline;
    options.replicas = spec.replicas;
    options.recordLosses = false;
    options.startIter = start_iter;
    options.warmupIters = spec.warmup;
    options.previewFinal = true; // benches always preview a batch
    options.recordIterSeconds = true;
    Trainer trainer(*algo, loader, &exec);
    TrainResult result =
        trainer.run(spec.warmup + spec.iters, options);

    RunStats stats;
    stats.timer = result.timer;
    stats.iters = spec.iters;
    stats.wallSeconds = result.wallSeconds;
    stats.finalizeSeconds = result.finalizeSeconds;
    stats.iterSeconds = std::move(result.iterSeconds);
    stats.tierStats = result.tierStats;
    return stats;
}

double
modeledEagerSeconds(const RunStats &measured,
                    const ModelConfig &measured_model,
                    std::uint64_t target_table_bytes, std::size_t batch)
{
    CostModel cm(MachineSpec::calibratedHost());
    const auto touched = static_cast<std::uint64_t>(
        expectedUniqueRows(measured_model.rowsPerTable, batch,
                           measured_model.pooling) *
        static_cast<double>(measured_model.numTables));
    return cm.extrapolateEagerSeconds(measured.timer, measured.iters,
                                      target_table_bytes, touched,
                                      measured_model.embedDim);
}

double
modeledLazySeconds(const RunStats &measured, const ModelConfig &model,
                   std::size_t batch, bool use_ans,
                   std::uint64_t target_table_bytes)
{
    CostModel cm(MachineSpec::calibratedHost());
    const double iters = static_cast<double>(measured.iters);
    const double fixed =
        (measured.timer.seconds(Stage::Forward) +
         measured.timer.seconds(Stage::BackwardPerExample) +
         measured.timer.seconds(Stage::BackwardPerBatch) +
         measured.timer.seconds(Stage::GradCoalesce) +
         measured.timer.seconds(Stage::LazyOverhead) +
         measured.timer.seconds(Stage::Else)) /
        iters;
    const auto touched = static_cast<std::uint64_t>(
        expectedUniqueRows(model.rowsPerTable, batch, model.pooling) *
        static_cast<double>(model.numTables));
    const auto upd = cm.lazyUpdate(
        touched, model.embedDim, use_ans,
        target_table_bytes / sizeof(float));
    return fixed + upd.total();
}

void
printPreamble(const std::string &figure, const std::string &what)
{
    std::printf("\n################################################\n");
    std::printf("# %s -- %s\n", figure.c_str(), what.c_str());
    std::printf("# rows marked 'measured' ran on this host;\n");
    std::printf("# rows marked 'modeled' extend the series to the\n");
    std::printf("# paper's table sizes via the calibrated roofline\n");
    std::printf("# model (see DESIGN.md, Substitutions).\n");
    std::printf("# kernels: %s (--kernels / LAZYDP_KERNELS)\n",
                kernelBackendName(activeKernelBackend()));
    std::printf("################################################\n");
    std::fflush(stdout);
}

} // namespace bench
} // namespace lazydp
