/**
 * @file
 * Paper Figure 6: effective AVX throughput of a load -> N-compute-ops
 * -> store streaming kernel as N sweeps 0..124. Small N is memory
 * bound (the noisy-gradient-update regime, N=2); large N is compute
 * bound (the Box-Muller noise-sampling regime, N~101).
 *
 * Implemented with google-benchmark: each N is one benchmark, GFLOPS
 * reported as a counter; a summary table with the two paper anchor
 * points is printed at the end.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/cpu_features.h"
#include "tensor/aligned_buffer.h"
#include "tensor/simd_kernels.h"

namespace {

// Working set must exceed the LLC so small-N kernels hit DRAM.
constexpr std::size_t kElems = 48u << 20; // 192 MB per buffer

lazydp::AlignedBuffer<float> &
srcBuffer()
{
    static lazydp::AlignedBuffer<float> buf(kElems);
    return buf;
}

lazydp::AlignedBuffer<float> &
dstBuffer()
{
    static lazydp::AlignedBuffer<float> buf(kElems);
    return buf;
}

void
BM_StreamWithOps(benchmark::State &state)
{
    const int n_ops = static_cast<int>(state.range(0));
    auto &src = srcBuffer();
    auto &dst = dstBuffer();
    std::size_t flops = 0;
    constexpr std::size_t kBlocks = 64;
    for (auto _ : state) {
        // socket-level, matching the paper's methodology
        std::size_t local = 0;
#pragma omp parallel for schedule(static) reduction(+ : local)
        for (std::size_t b = 0; b < kBlocks; ++b) {
            local += lazydp::simd::streamWithOps(
                dst.data() + b * (kElems / kBlocks),
                src.data() + b * (kElems / kBlocks), kElems / kBlocks,
                n_ops);
        }
        flops += local;
        benchmark::ClobberMemory();
    }
    state.counters["GFLOPS"] = benchmark::Counter(
        static_cast<double>(flops) / 1e9, benchmark::Counter::kIsRate);
    state.counters["GB/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * kElems * 8.0 / 1e9,
        benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_StreamWithOps)
    ->DenseRange(0, 124, 4)
    ->Unit(benchmark::kMillisecond)
    ->MinWarmUpTime(0.05)
    ->MinTime(0.12);

int
main(int argc, char **argv)
{
    std::printf("\n################################################\n");
    std::printf("# Figure 6 -- AVX roofline: GFLOPS vs N compute ops\n");
    std::printf("# per loaded vector. N=2 ~ noisy gradient update\n");
    std::printf("# (memory bound); N=101 ~ Box-Muller noise sampling\n");
    std::printf("# (compute bound, 81%% of peak in the paper).\n");
    std::printf("# AVX2 path active: %s\n",
                lazydp::simd::avx2Enabled() ? "yes" : "no");
    std::printf("################################################\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
