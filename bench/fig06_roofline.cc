/**
 * @file
 * Paper Figure 6: effective AVX throughput of a load -> N-compute-ops
 * -> store streaming kernel as N sweeps 0..124. Small N is memory
 * bound (the noisy-gradient-update regime, N=2); large N is compute
 * bound (the Box-Muller noise-sampling regime, N~101).
 *
 * Implemented with google-benchmark: each N is one benchmark, GFLOPS
 * reported as a counter. `--threads=N` sets the pool width for the
 * sweep (default: all hardware threads). `--thread-sweep=1,2,4,8`
 * skips the full N sweep and instead measures the two paper anchor
 * kernels (N=2 memory bound, N=100 compute bound) at each thread
 * count, so the perf trajectory records *scaling*, not just
 * single-core time.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "tensor/aligned_buffer.h"
#include "tensor/simd_kernels.h"

namespace {

// Working set must exceed the LLC so small-N kernels hit DRAM.
constexpr std::size_t kElems = 48u << 20; // 192 MB per buffer

lazydp::AlignedBuffer<float> &
srcBuffer()
{
    static lazydp::AlignedBuffer<float> buf(kElems);
    return buf;
}

lazydp::AlignedBuffer<float> &
dstBuffer()
{
    static lazydp::AlignedBuffer<float> buf(kElems);
    return buf;
}

std::unique_ptr<lazydp::ThreadPool> g_pool;

/** One pool-parallel pass of the Figure 6 kernel; returns flops. */
std::size_t
streamPass(lazydp::ExecContext &exec, int n_ops)
{
    auto &src = srcBuffer();
    auto &dst = dstBuffer();
    constexpr std::size_t kBlocks = 64;
    std::vector<std::size_t> flops_per(kBlocks, 0);
    lazydp::parallelForShards(
        exec, kElems, kElems / kBlocks,
        [&](std::size_t s, std::size_t lo, std::size_t hi) {
            flops_per[s] = lazydp::simd::streamWithOps(
                dst.data() + lo, src.data() + lo, hi - lo, n_ops);
        });
    std::size_t flops = 0;
    for (const std::size_t f : flops_per)
        flops += f;
    return flops;
}

void
BM_StreamWithOps(benchmark::State &state)
{
    const int n_ops = static_cast<int>(state.range(0));
    lazydp::ExecContext exec(g_pool.get());
    std::size_t flops = 0;
    for (auto _ : state) {
        // socket-level, matching the paper's methodology
        flops += streamPass(exec, n_ops);
        benchmark::ClobberMemory();
    }
    state.counters["GFLOPS"] = benchmark::Counter(
        static_cast<double>(flops) / 1e9, benchmark::Counter::kIsRate);
    state.counters["GB/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * kElems * 8.0 / 1e9,
        benchmark::Counter::kIsRate);
}

/** Anchor-kernel thread sweep: GFLOPS / GB/s per pool width. */
void
runThreadSweep(const std::vector<std::size_t> &counts)
{
    std::printf("\nthread sweep: N=2 (memory bound) and N=100 "
                "(compute bound), 3 passes each\n");
    std::printf("%8s %14s %14s %12s\n", "threads", "N=2 GB/s",
                "N=100 GFLOPS", "N=100 spdup");
    double base_flops = 0.0;
    for (const std::size_t t : counts) {
        lazydp::ThreadPool pool(t);
        lazydp::ExecContext exec(&pool);
        streamPass(exec, 2); // warm
        const int reps = 3;
        lazydp::WallTimer mem_t;
        for (int r = 0; r < reps; ++r)
            streamPass(exec, 2);
        const double mem_secs = mem_t.seconds();
        lazydp::WallTimer cmp_t;
        std::size_t flops = 0;
        for (int r = 0; r < reps; ++r)
            flops += streamPass(exec, 100);
        const double cmp_secs = cmp_t.seconds();
        const double gbps =
            reps * static_cast<double>(kElems) * 8.0 / mem_secs / 1e9;
        const double gflops =
            static_cast<double>(flops) / cmp_secs / 1e9;
        if (base_flops == 0.0)
            base_flops = gflops;
        std::printf("%8zu %14.2f %14.2f %11.2fx\n", t, gbps, gflops,
                    gflops / base_flops);
    }
}

} // namespace

BENCHMARK(BM_StreamWithOps)
    ->DenseRange(0, 124, 4)
    ->Unit(benchmark::kMillisecond)
    ->MinWarmUpTime(0.05)
    ->MinTime(0.12);

int
main(int argc, char **argv)
{
    // Peel off our flags before google-benchmark sees (and rejects)
    // them.
    std::size_t threads = lazydp::hardwareThreads();
    std::vector<std::size_t> sweep;
    std::vector<char *> passthrough;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--threads=", 0) == 0) {
            threads = lazydp::parseU64(arg.substr(10));
            if (threads == 0)
                threads = lazydp::hardwareThreads();
        } else if (arg.rfind("--thread-sweep=", 0) == 0) {
            for (const auto &tok : lazydp::split(arg.substr(15), ','))
                sweep.push_back(lazydp::parseU64(tok));
        } else {
            passthrough.push_back(argv[i]);
        }
    }

    std::printf("\n################################################\n");
    std::printf("# Figure 6 -- AVX roofline: GFLOPS vs N compute ops\n");
    std::printf("# per loaded vector. N=2 ~ noisy gradient update\n");
    std::printf("# (memory bound); N=101 ~ Box-Muller noise sampling\n");
    std::printf("# (compute bound, 81%% of peak in the paper).\n");
    std::printf("# AVX2 path active: %s; pool threads: %zu\n",
                lazydp::simd::avx2Enabled() ? "yes" : "no", threads);
    std::printf("################################################\n");

    if (!sweep.empty()) {
        runThreadSweep(sweep);
        return 0;
    }

    g_pool = std::make_unique<lazydp::ThreadPool>(threads);
    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    g_pool.reset();
    return 0;
}
