/**
 * @file
 * Paper Figure 12: modeled energy consumption of SGD / LazyDP /
 * DP-SGD(F) across batch sizes, normalized to SGD at batch 2048.
 *
 * Energy = sum over stages of stage_time x stage_power (pcm-power
 * substitution; see DESIGN.md). Expected shape: LazyDP within ~2-3x of
 * SGD, DP-SGD(F) two orders of magnitude higher -- energy follows time
 * because power varies far less than latency.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/string_util.h"

using namespace lazydp;
using namespace lazydp::bench;

int
main()
{
    const std::uint64_t table_bytes = 960ull << 20;
    printPreamble("Figure 12", "energy: SGD / LazyDP / DP-SGD(F)");

    const EnergyModel energy(MachineSpec::paperXeon());
    const char *algos[] = {"sgd", "lazydp", "dpsgd-f"};
    const std::size_t batches[] = {1024, 2048, 4096};

    TablePrinter table("Figure 12: energy per iteration, " +
                       humanBytes(table_bytes) +
                       " tables (normalized to SGD@2048)");
    table.setHeader(
        {"algo", "batch", "joules/iter", "vs SGD@2048"});

    double ref = 0.0;
    struct Cell
    {
        std::string algo;
        std::size_t batch;
        double joules;
    };
    std::vector<Cell> cells;
    for (const char *algo : algos) {
        for (const std::size_t batch : batches) {
            RunSpec spec;
            spec.algo = algo;
            spec.model = ModelConfig::mlperfBench(table_bytes);
            spec.batch = batch;
            spec.iters = 3;
            spec.warmup = 1;
            const RunStats s = runMeasured(spec);
            const double joules =
                energy.joules(s.timer) / static_cast<double>(s.iters);
            if (std::string(algo) == "sgd" && batch == 2048)
                ref = joules;
            cells.push_back({algo, batch, joules});
        }
    }
    for (const auto &c : cells) {
        table.addRow({c.algo, std::to_string(c.batch),
                      TablePrinter::num(c.joules, 2),
                      TablePrinter::num(c.joules / ref, 2)});
    }
    table.print(std::cout);
    std::printf("\nPaper anchors: LazyDP 0.7-3.0x SGD energy; DP-SGD(F) "
                "~353x at this scale grows with table size (155x "
                "average saving for LazyDP).\n");
    return 0;
}
