/**
 * @file
 * Paper Figure 11: latency breakdown of LazyDP itself at batch 2048,
 * including the LazyDP-introduced overhead and its three components
 * (next-index dedup / HistoryTable read + ANS stddev / HistoryTable
 * update). In the paper the overhead totals ~15% of training time,
 * split 61% / 22% / 17%.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "common/cli.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/lazydp.h"
#include "data/data_loader.h"
#include "train/trainer.h"

using namespace lazydp;
using namespace lazydp::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv,
                       {"threads", "table-mb", "iters", "pipeline",
                        "kernels", "help"});
    if (args.has("help")) {
        std::printf("fig11_lazydp_breakdown [--threads=N] [--iters=N] "
                    "[--pipeline[=on]] [--table-mb=N] "
                    "[--kernels=scalar|avx2|auto]\n");
        return 0;
    }
    args.applyKernels();
    const std::size_t threads = args.getThreads(1);
    const std::uint64_t iters = args.getU64("iters", 3);
    const bool pipeline = args.getBool("pipeline", false);
    ThreadPool pool(threads);
    ExecContext exec(&pool);

    const std::uint64_t table_bytes = args.getU64("table-mb", 960) << 20;
    printPreamble("Figure 11",
                  "LazyDP latency breakdown (batch 2048, " +
                      std::to_string(threads) + " threads, pipeline " +
                      (pipeline ? "on" : "off") + ")");

    // Run LazyDP directly (not via the factory) to read the overhead
    // sub-stage counters.
    const auto mc = ModelConfig::mlperfBench(table_bytes);
    DlrmModel model(mc, 1);
    SyntheticDataset dataset(
        datasetFor(mc, AccessConfig::uniform(), 2048, 0xDA7A));
    TrainHyper hyper;
    LazyDpAlgorithm lazy(model, hyper, /*use_ans=*/true);
    lazy.warmStartHistory(4096, expectedDelay(mc, 2048), 7);

    SequentialLoader loader(dataset);
    const std::uint64_t warmup = 1;
    TrainOptions options;
    options.pipeline = pipeline;
    options.recordLosses = false;
    options.startIter = 4096;
    options.warmupIters = warmup;
    options.previewFinal = true;
    Trainer trainer(lazy, loader, &exec);
    const TrainResult result = trainer.run(warmup + iters, options);
    const StageTimer &timer = result.timer;

    const double total = timer.totalSeconds();
    TablePrinter table("Figure 11: LazyDP stage shares");
    table.setHeader({"stage", "sec/iter", "share"});
    auto add = [&](Stage s) {
        table.addRow({stageName(s),
                      TablePrinter::num(timer.seconds(s) / iters, 5),
                      TablePrinter::num(
                          100.0 * timer.seconds(s) / total, 1) +
                          "%"});
    };
    add(Stage::Forward);
    add(Stage::BackwardPerExample);
    add(Stage::BackwardPerBatch);
    add(Stage::GradCoalesce);
    add(Stage::NoiseSampling);
    add(Stage::NoisyGradGen);
    add(Stage::NoisyGradUpdate);
    add(Stage::LazyOverhead);
    add(Stage::Else);
    table.print(std::cout);

    // Under the pipeline, prepare stages overlap compute, so the busy
    // sum exceeds wall time; both are needed to read the shares above.
    std::printf("\nbusy %.5f s/iter (stage sum) vs wall %.5f s/iter "
                "(end-to-end, incl. data loading)\n",
                total / static_cast<double>(iters),
                result.secondsPerIteration());

    const auto &ovh = lazy.overheadBreakdown();
    const double ovh_total = ovh.dedupSeconds + ovh.historyReadSeconds +
                             ovh.historyWriteSeconds;
    TablePrinter split("LazyDP overhead components (paper: 61/22/17%)");
    split.setHeader({"component", "share"});
    auto pct = [&](double x) {
        return TablePrinter::num(100.0 * x / ovh_total, 1) + "%";
    };
    split.addRow({"dedup next-batch indices", pct(ovh.dedupSeconds)});
    split.addRow(
        {"HistoryTable read + ANS stddev", pct(ovh.historyReadSeconds)});
    split.addRow({"HistoryTable update", pct(ovh.historyWriteSeconds)});
    split.print(std::cout);

    std::printf("\nPaper anchors: no single stage dominates; LazyDP "
                "overhead ~15%% of iteration time; noise sampling "
                "reduced 1081x and noisy update 418x vs DP-SGD(F).\n");
    return 0;
}
