/**
 * @file
 * Paper Figure 10: end-to-end training time of SGD, LazyDP,
 * LazyDP(w/o ANS) and DP-SGD(F) across mini-batch sizes
 * (1024/2048/4096), normalized to SGD at batch 2048.
 *
 * Expected shape: DP-SGD(F) orders of magnitude above SGD (growing
 * with table size); LazyDP(w/o ANS) in between (memory bottleneck gone,
 * sampling bottleneck remains); LazyDP within ~2-3x of SGD.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

using namespace lazydp;
using namespace lazydp::bench;

int
main()
{
    const std::uint64_t table_bytes = 960ull << 20;
    printPreamble("Figure 10",
                  "end-to-end time: SGD / LazyDP / LazyDP(w/o ANS) / "
                  "DP-SGD(F) x batch size");

    const char *algos[] = {"sgd", "lazydp", "lazydp-noans", "dpsgd-f"};
    const std::size_t batches[] = {1024, 2048, 4096};

    TablePrinter table("Figure 10: training time, " +
                       humanBytes(table_bytes) +
                       " tables (normalized to SGD@2048)");
    table.setHeader({"algo", "batch", "mode", "sec/iter", "vs SGD@2048"});

    // First pass: measure SGD@2048 for the normalization base.
    double ref = 0.0;
    struct Cell
    {
        std::string algo;
        std::size_t batch;
        RunStats stats;
        ModelConfig model;
    };
    std::vector<Cell> cells;

    for (const char *algo : algos) {
        for (const std::size_t batch : batches) {
            RunSpec spec;
            spec.algo = algo;
            spec.model = ModelConfig::mlperfBench(table_bytes);
            spec.batch = batch;
            spec.iters = 3;
            spec.warmup = 1;
            Cell cell{algo, batch, runMeasured(spec), spec.model};
            if (cell.algo == "sgd" && batch == 2048)
                ref = cell.stats.secondsPerIter();
            cells.push_back(std::move(cell));
        }
    }

    for (const auto &cell : cells) {
        table.addRow({cell.algo, std::to_string(cell.batch), "measured",
                      TablePrinter::num(cell.stats.secondsPerIter(), 4),
                      TablePrinter::num(
                          cell.stats.secondsPerIter() / ref, 2)});
    }

    // Modeled series at the paper's 96 GB scale (batch 2048).
    const std::uint64_t paper_bytes = 96ull << 30;
    for (const auto &cell : cells) {
        if (cell.batch != 2048)
            continue;
        double sec;
        if (cell.algo == "sgd") {
            sec = cell.stats.secondsPerIter(); // size-independent
        } else if (cell.algo == "dpsgd-f") {
            sec = modeledEagerSeconds(cell.stats, cell.model,
                                      paper_bytes, cell.batch);
        } else {
            sec = modeledLazySeconds(cell.stats, cell.model, cell.batch,
                                     cell.algo == "lazydp", paper_bytes);
        }
        table.addRow({cell.algo, "2048", "modeled 96GB",
                      TablePrinter::num(sec, 4),
                      TablePrinter::num(sec / ref, 2)});
    }

    table.print(std::cout);
    std::printf("\nPaper anchors: DP-SGD(F) 166-375x SGD; LazyDP(w/o "
                "ANS) ~72%% faster than DP-SGD(F) but still 97-218x "
                "SGD; LazyDP 1.96-2.42x SGD (85-155x speedup).\n");
    return 0;
}
