/**
 * @file
 * Paper Figure 10: end-to-end training time of SGD, LazyDP,
 * LazyDP(w/o ANS) and DP-SGD(F) across mini-batch sizes
 * (1024/2048/4096), normalized to SGD at batch 2048.
 *
 * Expected shape: DP-SGD(F) orders of magnitude above SGD (growing
 * with table size); LazyDP(w/o ANS) in between (memory bottleneck gone,
 * sampling bottleneck remains); LazyDP within ~2-3x of SGD.
 *
 * Threading: `--threads=N` runs every measurement on an N-wide pool
 * (and, for N > 1, also measures the LazyDP@2048 configuration at one
 * thread to report the multi-core speedup). `--thread-sweep=1,2,4,8`
 * replaces the batch sweep with a LazyDP/DP-SGD(F) scaling table; the
 * trained model is bit-identical at every width, so the sweep measures
 * pure execution scaling.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/cli.h"
#include "common/string_util.h"

using namespace lazydp;
using namespace lazydp::bench;

namespace {

RunSpec
specFor(const char *algo, std::size_t batch, std::uint64_t table_bytes,
        std::size_t threads, bool pipeline, std::size_t replicas = 1)
{
    RunSpec spec;
    spec.algo = algo;
    spec.model = ModelConfig::mlperfBench(table_bytes);
    spec.batch = batch;
    spec.iters = 3;
    spec.warmup = 1;
    spec.threads = threads;
    spec.pipeline = pipeline;
    spec.replicas = replicas;
    return spec;
}

void
runReplicaSweep(const std::vector<std::size_t> &counts,
                std::uint64_t table_bytes, std::size_t threads,
                bool pipeline)
{
    TablePrinter table(
        "Figure 10 replica sweep: lot-sharded data-parallel workers "
        "(batch 2048, " + std::to_string(threads) + " threads, pipeline " +
        (pipeline ? "on" : "off") + "; bit-identical model at every "
        "count)");
    table.setHeader({"algo", "replicas", "sec/iter (wall)",
                     "busy s/iter", "speedup vs 1st"});
    for (const char *algo : {"lazydp", "dpsgd-f"}) {
        double base = 0.0;
        for (const std::size_t r : counts) {
            const RunStats stats = runMeasured(specFor(
                algo, 2048, table_bytes, threads, pipeline, r));
            const double sec = stats.secondsPerIter();
            if (base == 0.0)
                base = sec;
            table.addRow({algo, std::to_string(r),
                          TablePrinter::num(sec, 4),
                          TablePrinter::num(stats.busySecondsPerIter(), 4),
                          TablePrinter::num(base / sec, 2) + "x"});
        }
    }
    table.print(std::cout);
}

void
runThreadSweep(const std::vector<std::size_t> &counts,
               std::uint64_t table_bytes, bool pipeline)
{
    TablePrinter table("Figure 10 thread sweep: sec/iter vs pool width "
                       "(batch 2048)");
    table.setHeader(
        {"algo", "threads", "sec/iter", "speedup vs 1st"});
    for (const char *algo : {"lazydp", "lazydp-noans", "dpsgd-f"}) {
        double base = 0.0;
        for (const std::size_t t : counts) {
            const RunStats stats = runMeasured(
                specFor(algo, 2048, table_bytes, t, pipeline));
            const double sec = stats.secondsPerIter();
            if (base == 0.0)
                base = sec;
            table.addRow({algo, std::to_string(t),
                          TablePrinter::num(sec, 4),
                          TablePrinter::num(base / sec, 2) + "x"});
        }
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv,
                       {"threads", "thread-sweep", "replica-sweep",
                        "table-mb", "pipeline", "kernels", "help"});
    if (args.has("help")) {
        std::printf("fig10_end_to_end [--threads=N] [--pipeline[=on]] "
                    "[--thread-sweep=1,2,4,8] [--replica-sweep=1,2,4] "
                    "[--table-mb=N] [--kernels=scalar|avx2|auto]\n");
        return 0;
    }
    args.applyKernels();
    const std::size_t threads = args.getThreads(1);
    const bool pipeline = args.getBool("pipeline", false);
    const std::uint64_t table_bytes = args.getU64("table-mb", 960) << 20;

    if (args.has("replica-sweep")) {
        std::vector<std::size_t> counts;
        for (const auto &tok :
             split(args.getString("replica-sweep", ""), ','))
            counts.push_back(parseU64(tok));
        if (counts.empty()) // bare --replica-sweep: all valid counts
            counts = {1, 2, 4};
        printPreamble("Figure 10",
                      "replica sweep: lot-sharded data-parallel "
                      "LazyDP / DP-SGD(F)");
        runReplicaSweep(counts, table_bytes, threads, pipeline);
        return 0;
    }

    printPreamble("Figure 10",
                  "end-to-end time: SGD / LazyDP / LazyDP(w/o ANS) / "
                  "DP-SGD(F) x batch size");

    if (args.has("thread-sweep")) {
        std::vector<std::size_t> counts;
        for (const auto &tok :
             split(args.getString("thread-sweep", ""), ','))
            counts.push_back(parseU64(tok));
        if (counts.empty()) // bare --thread-sweep: default widths
            counts = {1, 2, 4, 8};
        runThreadSweep(counts, table_bytes, pipeline);
        return 0;
    }

    const char *algos[] = {"sgd", "lazydp", "lazydp-noans", "dpsgd-f"};
    const std::size_t batches[] = {1024, 2048, 4096};

    TablePrinter table(
        "Figure 10: training time, " + humanBytes(table_bytes) +
        " tables, " + std::to_string(threads) + " threads, pipeline " +
        (pipeline ? "on" : "off") + " (normalized to SGD@2048)");
    table.setHeader({"algo", "batch", "mode", "sec/iter", "busy s/iter",
                     "vs SGD@2048"});

    // First pass: measure SGD@2048 for the normalization base.
    double ref = 0.0;
    struct Cell
    {
        std::string algo;
        std::size_t batch;
        RunStats stats;
        ModelConfig model;
    };
    std::vector<Cell> cells;

    for (const char *algo : algos) {
        for (const std::size_t batch : batches) {
            RunSpec spec =
                specFor(algo, batch, table_bytes, threads, pipeline);
            Cell cell{algo, batch, runMeasured(spec), spec.model};
            if (cell.algo == "sgd" && batch == 2048)
                ref = cell.stats.secondsPerIter();
            cells.push_back(std::move(cell));
        }
    }

    for (const auto &cell : cells) {
        table.addRow(
            {cell.algo, std::to_string(cell.batch), "measured",
             TablePrinter::num(cell.stats.secondsPerIter(), 4),
             TablePrinter::num(cell.stats.busySecondsPerIter(), 4),
             TablePrinter::num(cell.stats.secondsPerIter() / ref, 2)});
    }

    // Modeled series at the paper's 96 GB scale (batch 2048).
    const std::uint64_t paper_bytes = 96ull << 30;
    for (const auto &cell : cells) {
        if (cell.batch != 2048)
            continue;
        double sec;
        if (cell.algo == "sgd") {
            sec = cell.stats.secondsPerIter(); // size-independent
        } else if (cell.algo == "dpsgd-f") {
            sec = modeledEagerSeconds(cell.stats, cell.model,
                                      paper_bytes, cell.batch);
        } else {
            sec = modeledLazySeconds(cell.stats, cell.model, cell.batch,
                                     cell.algo == "lazydp", paper_bytes);
        }
        table.addRow({cell.algo, "2048", "modeled 96GB",
                      TablePrinter::num(sec, 4), "-",
                      TablePrinter::num(sec / ref, 2)});
    }

    table.print(std::cout);

    if (threads > 1) {
        // Scaling check: the same LazyDP configuration on one thread.
        const RunStats serial = runMeasured(
            specFor("lazydp", 2048, table_bytes, 1, pipeline));
        double multi = 0.0;
        for (const auto &cell : cells) {
            if (cell.algo == "lazydp" && cell.batch == 2048)
                multi = cell.stats.secondsPerIter();
        }
        std::printf("\nLazyDP@2048 threads=%zu speedup over threads=1: "
                    "%.2fx (%.4fs -> %.4fs per iter)\n",
                    threads, serial.secondsPerIter() / multi,
                    serial.secondsPerIter(), multi);
    }

    if (pipeline) {
        // Pipeline check: the same LazyDP configuration, serial
        // schedule. The trained model is bit-identical; only the
        // overlap differs.
        const RunStats off = runMeasured(
            specFor("lazydp", 2048, table_bytes, threads, false));
        double on = 0.0;
        for (const auto &cell : cells) {
            if (cell.algo == "lazydp" && cell.batch == 2048)
                on = cell.stats.secondsPerIter();
        }
        std::printf("\nLazyDP@2048 pipeline speedup over off "
                    "(threads=%zu): %.2fx (%.4fs -> %.4fs per iter)\n",
                    threads, off.secondsPerIter() / on,
                    off.secondsPerIter(), on);
    }

    std::printf("\nPaper anchors: DP-SGD(F) 166-375x SGD; LazyDP(w/o "
                "ANS) ~72%% faster than DP-SGD(F) but still 97-218x "
                "SGD; LazyDP 1.96-2.42x SGD (85-155x speedup).\n");
    return 0;
}
