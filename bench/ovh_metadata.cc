/**
 * @file
 * Paper Section 7.2 (implementation overhead): LazyDP's metadata
 * footprint -- the 2-entry input queue (~213 KB at batch 2048) and the
 * HistoryTable (~751 MB for the 96 GB model, <1% of model size) --
 * computed for the paper's configuration and measured for the local
 * scaled configuration.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "core/lazydp.h"

using namespace lazydp;
using namespace lazydp::bench;

int
main()
{
    printPreamble("Section 7.2", "LazyDP metadata overhead");

    TablePrinter table("LazyDP metadata footprint");
    table.setHeader(
        {"config", "structure", "bytes", "fraction of model"});

    // Paper-scale arithmetic: 96 GB MLPerf DLRM, batch 2048.
    {
        const auto mc = ModelConfig::mlperfDlrm(96ull * 1000 * 1000 *
                                                1000);
        const std::uint64_t queue_bytes =
            2048ull * mc.numTables * mc.pooling * sizeof(std::uint32_t);
        const std::uint64_t history_bytes =
            static_cast<std::uint64_t>(mc.numTables) * mc.rowsPerTable *
            sizeof(std::uint32_t);
        table.addRow({"96 GB MLPerf DLRM (paper)", "InputQueue (+1 batch)",
                      humanBytes(queue_bytes),
                      TablePrinter::num(100.0 * queue_bytes /
                                            mc.tableBytes(),
                                        6) +
                          "%"});
        table.addRow({"96 GB MLPerf DLRM (paper)", "HistoryTable",
                      humanBytes(history_bytes),
                      TablePrinter::num(100.0 * history_bytes /
                                            mc.tableBytes(),
                                        3) +
                          "%"});
    }

    // Local scaled configuration, measured from the live object.
    {
        const auto mc = ModelConfig::mlperfBench(960ull << 20);
        DlrmModel model(mc, 1);
        TrainHyper hyper;
        LazyDpAlgorithm lazy(model, hyper, true);
        table.addRow({"960 MB local config", "HistoryTable (measured)",
                      humanBytes(lazy.metadataBytes()),
                      TablePrinter::num(100.0 * lazy.metadataBytes() /
                                            model.tableBytes(),
                                        3) +
                          "%"});
    }
    table.print(std::cout);

    std::printf("\nPaper anchors: 213 KB input queue; 751 MB "
                "HistoryTable (<1%% of the 96 GB model).\n");
    return 0;
}
