/**
 * @file
 * Ablation of the HistoryTable design (paper Section 5.2.1): LazyDP
 * stores the *last noised iteration id* per row and writes only for
 * accessed rows; the naive alternative -- a pending-update counter per
 * row incremented every iteration -- regenerates exactly the dense
 * write traffic LazyDP set out to remove. This bench measures the
 * per-iteration bookkeeping cost of both designs as tables grow.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/history_table.h"
#include "nn/embedding.h"
#include "rng/xoshiro.h"

using namespace lazydp;
using namespace lazydp::bench;

namespace {

/** The naive design: one counter per row, all incremented per iter. */
class NaiveCounterTable
{
  public:
    NaiveCounterTable(std::size_t tables, std::uint64_t rows)
        : counters_(tables, std::vector<std::uint32_t>(rows, 0))
    {
    }

    void
    tick()
    {
        // dense pass: every row's pending count grows by one
        for (auto &t : counters_)
            for (auto &c : t)
                ++c;
    }

    void
    consume(std::size_t table, const std::vector<std::uint32_t> &rows,
            std::vector<std::uint32_t> &delays)
    {
        delays.resize(rows.size());
        for (std::size_t i = 0; i < rows.size(); ++i) {
            delays[i] = counters_[table][rows[i]];
            counters_[table][rows[i]] = 0;
        }
    }

  private:
    std::vector<std::vector<std::uint32_t>> counters_;
};

} // namespace

int
main()
{
    printPreamble("Ablation", "HistoryTable: iteration ids vs naive "
                              "per-row counters");

    const std::size_t tables = 26;
    const std::size_t accessed_per_table = 2048;
    const std::uint64_t row_counts[] = {1u << 16, 1u << 18, 1u << 20,
                                        1u << 22};

    TablePrinter table("HistoryTable bookkeeping cost per iteration");
    table.setHeader({"rows/table", "id-based (LazyDP)", "naive counters",
                     "naive/id ratio"});

    Xoshiro256 rng(1);
    for (const std::uint64_t rows : row_counts) {
        std::vector<std::uint32_t> accessed(accessed_per_table);
        std::vector<std::uint32_t> delays;

        HistoryTable id_table(tables, rows);
        double id_secs = 0.0;
        {
            WallTimer timer;
            for (std::uint64_t iter = 1; iter <= 10; ++iter) {
                for (std::size_t t = 0; t < tables; ++t) {
                    for (auto &a : accessed)
                        a = static_cast<std::uint32_t>(
                            rng.nextBelow(rows));
                    std::sort(accessed.begin(), accessed.end());
                    id_table.delaysAndRenew(t, accessed, iter, delays);
                }
            }
            id_secs = timer.seconds() / 10.0;
        }

        NaiveCounterTable naive(tables, rows);
        double naive_secs = 0.0;
        {
            WallTimer timer;
            for (std::uint64_t iter = 1; iter <= 10; ++iter) {
                naive.tick(); // the dense write traffic
                for (std::size_t t = 0; t < tables; ++t) {
                    for (auto &a : accessed)
                        a = static_cast<std::uint32_t>(
                            rng.nextBelow(rows));
                    naive.consume(t, accessed, delays);
                }
            }
            naive_secs = timer.seconds() / 10.0;
        }

        table.addRow({std::to_string(rows), humanSeconds(id_secs),
                      humanSeconds(naive_secs),
                      TablePrinter::num(naive_secs / id_secs, 1) + "x"});
    }

    table.print(std::cout);
    std::printf("\nExpected shape: id-based cost flat in table size "
                "(writes only accessed rows); naive counter cost grows "
                "linearly (dense increment every iteration).\n");
    return 0;
}
