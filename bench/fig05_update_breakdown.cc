/**
 * @file
 * Paper Figure 5: latency breakdown of the DP-SGD model-update stage
 * (noise sampling / noisy gradient generation / noisy gradient update /
 * else) as table size grows, plus the update stage's latency growth.
 *
 * Expected shape: noise sampling + noisy gradient update dominate
 * (83%+ of the update at the largest size), and absolute update latency
 * grows linearly with table size.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

using namespace lazydp;
using namespace lazydp::bench;

int
main()
{
    printPreamble("Figure 5",
                  "DP-SGD(F) model-update latency breakdown vs size");

    const std::uint64_t sizes[] = {24ull << 20, 96ull << 20,
                                   384ull << 20, 960ull << 20};

    TablePrinter table(
        "Figure 5: model update breakdown (DP-SGD(F), batch 2048)");
    table.setHeader({"table size", "mode", "update s/iter",
                     "noise sampling", "noisy grad gen",
                     "noisy grad update", "else", "vs smallest"});

    double smallest_update = 0.0;
    for (const std::uint64_t bytes : sizes) {
        RunSpec spec;
        spec.algo = "dpsgd-f";
        spec.model = ModelConfig::mlperfBench(bytes);
        spec.batch = 2048;
        spec.iters = 3;
        spec.warmup = 1;
        const RunStats s = runMeasured(spec);
        const double it = static_cast<double>(s.iters);

        const double ns = s.timer.seconds(Stage::NoiseSampling) / it;
        const double ngg = s.timer.seconds(Stage::NoisyGradGen) / it;
        const double ngu = s.timer.seconds(Stage::NoisyGradUpdate) / it;
        const double other =
            (s.timer.seconds(Stage::GradCoalesce) +
             s.timer.seconds(Stage::Else)) /
            it;
        const double update = ns + ngg + ngu + other;
        if (smallest_update == 0.0)
            smallest_update = update;

        auto pct = [&](double x) {
            return TablePrinter::num(100.0 * x / update, 1) + "%";
        };
        table.addRow({humanBytes(bytes), "measured",
                      TablePrinter::num(update, 4), pct(ns), pct(ngg),
                      pct(ngu), pct(other),
                      TablePrinter::num(update / smallest_update, 1)});
    }

    // Modeled fractions at the paper's default 96 GB.
    {
        CostModel cm(MachineSpec::calibratedHost());
        const auto model = ModelConfig::mlperfBench(96ull << 30);
        const auto touched = static_cast<std::uint64_t>(
            expectedUniqueRows(model.rowsPerTable, 2048, model.pooling) *
            26.0);
        const auto upd =
            cm.eagerUpdate(96ull << 30, touched, model.embedDim);
        auto pct = [&](double x) {
            return TablePrinter::num(100.0 * x / upd.total(), 1) + "%";
        };
        table.addRow({"96.0 GB (paper)", "modeled",
                      TablePrinter::num(upd.total(), 2),
                      pct(upd.noiseSampling), pct(upd.noisyGradGen),
                      pct(upd.noisyGradUpdate), "0.0%",
                      TablePrinter::num(upd.total() / smallest_update,
                                        1)});
    }

    table.print(std::cout);
    std::printf("\nPaper anchor: noise sampling + noisy gradient update "
                "= 83.1%% of model update at 96 GB.\n");
    return 0;
}
