/**
 * @file
 * Paper Figure 13(c): robustness across DLRM model configurations
 * (DeepRecSys-style RMC1/RMC2/RMC3, which vary table count, embedding
 * dimension, and pooling). LazyDP's speedup over DP-SGD(F) holds for
 * every architecture (52.7x average in the paper), with the gap set by
 * each model's table-bytes-to-gather-work ratio.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

using namespace lazydp;
using namespace lazydp::bench;

int
main()
{
    printPreamble("Figure 13(c)", "alternative DLRM configurations");

    struct Case
    {
        const char *label;
        ModelConfig model;
    };
    const std::uint64_t bytes = 480ull << 20;
    const Case cases[] = {
        {"RMC1", ModelConfig::rmc1(bytes)},
        {"RMC2", ModelConfig::rmc2(bytes)},
        {"RMC3", ModelConfig::rmc3(bytes)},
    };
    const char *algos[] = {"sgd", "lazydp", "dpsgd-f"};

    TablePrinter table("Figure 13(c): RMC1/2/3 (normalized to each "
                       "model's SGD)");
    table.setHeader({"model", "algo", "sec/iter", "vs own SGD",
                     "lazydp ovh"});

    for (const auto &c : cases) {
        double ref = 0.0;
        for (const char *algo : algos) {
            RunSpec spec;
            spec.algo = algo;
            spec.model = c.model;
            spec.batch = 1024;
            spec.iters = 3;
            spec.warmup = 1;
            const RunStats s = runMeasured(spec);
            const double sec = s.secondsPerIter();
            if (std::string(algo) == "sgd")
                ref = sec;
            std::string ovh = "-";
            if (std::string(algo) == "lazydp") {
                const double frac =
                    s.timer.seconds(Stage::LazyOverhead) /
                    s.timer.totalSeconds();
                ovh = TablePrinter::num(100.0 * frac, 1) + "%";
            }
            table.addRow({c.label, algo, TablePrinter::num(sec, 4),
                          TablePrinter::num(sec / ref, 1), ovh});
        }
    }

    table.print(std::cout);
    std::printf("\nPaper anchors: DP-SGD(F) 98x/28x/329x vs SGD on "
                "RMC1/2/3; LazyDP 2.6-3.8x; LazyDP overhead "
                "8.9-11.9%% of its iteration time.\n");
    return 0;
}
