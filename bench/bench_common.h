/**
 * @file
 * Shared harness for the figure-reproduction benchmarks.
 *
 * Scale note (also see DESIGN.md): the paper's evaluation uses 24-192 GB
 * embedding tables on a 256 GB host; this repository runs on whatever
 * host executes it, so each figure measures *real* executions at sizes
 * scaled to fit local DRAM and extends the series to the paper's sizes
 * with the calibrated roofline model (rows labelled `modeled`). Shapes
 * -- who wins, slopes, crossovers -- are preserved; absolute numbers
 * are host-specific.
 */

#ifndef LAZYDP_BENCH_BENCH_COMMON_H
#define LAZYDP_BENCH_BENCH_COMMON_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/factory.h"
#include "data/synthetic_dataset.h"
#include "nn/model_config.h"
#include "nn/tiered_store.h"
#include "sim/cost_model.h"
#include "sim/energy_model.h"
#include "train/algorithm.h"

namespace lazydp {
namespace bench {

/** One measured configuration. */
struct RunSpec
{
    std::string algo = "sgd";     //!< factory algorithm name
    ModelConfig model;            //!< model shape
    AccessConfig access;          //!< table-access distribution
    std::size_t batch = 2048;
    std::uint64_t iters = 2;      //!< measured iterations
    std::uint64_t warmup = 1;     //!< untimed warmup iterations
    bool warmHistory = true;      //!< steady-state HistoryTable ages
    TrainHyper hyper;
    std::uint64_t dataSeed = 0xDA7A;
    std::uint64_t modelSeed = 1;

    /**
     * Execution width for every step/finalize (1 = serial; 0 = all
     * hardware threads). Thread count changes wall time only, never
     * the trained model.
     */
    std::size_t threads = 1;

    /**
     * Run the Trainer's two-stage software pipeline: prepare(i+1) and
     * the batch-(i+2) prefetch overlap apply(i). Changes wall time
     * only, never the trained model.
     */
    bool pipeline = false;

    /**
     * Lot-sharded data-parallel worker replicas (1, 2 or 4). Changes
     * wall time only, never the trained model.
     */
    std::size_t replicas = 1;

    /**
     * Out-of-core mode: nonempty = back the embedding tables with the
     * tiered DRAM-hot / file-cold store, cold files under this
     * directory. Bit-identical model; only residency traffic and wall
     * time change.
     */
    std::string coldDir;

    /** Tiered only: DRAM hot-tier budget in bytes. */
    std::uint64_t hotBytes = 64ull << 20;

    /** Tiered only: lookahead warming on the prefetch lane (off =
     * every promotion faults synchronously -- the worst-case leg). */
    bool tierPrefetch = true;
};

/** Measured outcome of a RunSpec. */
struct RunStats
{
    StageTimer timer;             //!< measured iterations only
    std::uint64_t iters = 0;
    double wallSeconds = 0.0;     //!< wall time of measured iterations
    double finalizeSeconds = 0.0; //!< one-time LazyDP flush (excluded)

    /** Out-of-core residency counters (all zero unless RunSpec::coldDir
     * was set); covers warmup AND measured iterations. */
    TierStats tierStats;

    /** Per-measured-iteration wall seconds (percentile source). */
    std::vector<double> iterSeconds;

    /**
     * Nearest-rank percentiles of the per-iteration wall times: the
     * tail (p95/p99) next to the mean secondsPerIter() -- a run whose
     * p99 diverges from its mean has jitter the mean hides.
     */
    stats::Percentiles
    iterPercentiles() const
    {
        return stats::computePercentiles(iterSeconds);
    }

    /**
     * Mean END-TO-END wall seconds per measured iteration (includes
     * data loading; under the pipeline, overlapped stages count once).
     */
    double
    secondsPerIter() const
    {
        return iters == 0
                   ? 0.0
                   : wallSeconds / static_cast<double>(iters);
    }

    /**
     * Mean BUSY seconds per iteration: the sum of all timed stages.
     * Equals wall (minus data loading) on the serial schedule; exceeds
     * wall under the pipeline, where prepare stages overlap compute --
     * figures that break time down by stage use this denominator.
     */
    double
    busySecondsPerIter() const
    {
        return iters == 0 ? 0.0
                          : timer.totalSeconds() /
                                static_cast<double>(iters);
    }
};

/**
 * Execute a spec: build model + dataset, warm up, measure.
 *
 * LazyDP variants optionally get a steady-state HistoryTable so the
 * measured per-iteration pending-noise volume matches long-running
 * training rather than a cold start.
 */
RunStats runMeasured(const RunSpec &spec);

/** Expected unique rows gathered per table per iteration. */
double expectedUniqueRows(std::uint64_t rows, std::size_t batch,
                          std::size_t pooling);

/** Steady-state expected pending-noise delay (rows / unique-per-iter). */
double expectedDelay(const ModelConfig &model, std::size_t batch);

/**
 * Modeled per-iteration seconds for an eager DP-SGD at a target table
 * size, reusing a measured run's size-independent stages.
 */
double modeledEagerSeconds(const RunStats &measured,
                           const ModelConfig &measured_model,
                           std::uint64_t target_table_bytes,
                           std::size_t batch);

/** Modeled per-iteration seconds for LazyDP at any table size. */
double modeledLazySeconds(const RunStats &measured,
                          const ModelConfig &model, std::size_t batch,
                          bool use_ans, std::uint64_t target_table_bytes);

/** Shared "dataset config from model config" helper. */
DatasetConfig datasetFor(const ModelConfig &model,
                         const AccessConfig &access, std::size_t batch,
                         std::uint64_t seed);

/** Print the standard scale-note preamble for a figure bench. */
void printPreamble(const std::string &figure, const std::string &what);

} // namespace bench
} // namespace lazydp

#endif // LAZYDP_BENCH_BENCH_COMMON_H
