/**
 * @file
 * Ablation of the lazy weight-decay extension (not in the paper).
 *
 * Eager DP-SGD with L2 decay pays nothing extra: the decay multiply
 * folds into the dense streaming update it already performs. But that
 * dense pass is exactly what LazyDP removed -- a naive "decay each
 * iteration" would reintroduce full-table traffic. This bench compares
 * LazyDP with deferred decay (w *= alpha^k at flush time, geometric
 * noise weights) against LazyDP without decay and against eager
 * DP-SGD(F) with decay, showing the extension keeps LazyDP's sparse
 * cost profile.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

using namespace lazydp;
using namespace lazydp::bench;

int
main()
{
    const std::uint64_t table_bytes = 480ull << 20;
    printPreamble("Ablation", "lazy weight decay");

    struct Case
    {
        const char *label;
        const char *algo;
        float decay;
    };
    const Case cases[] = {
        {"LazyDP (no decay)", "lazydp", 0.0f},
        {"LazyDP + lazy decay", "lazydp", 0.1f},
        {"DP-SGD(F) (no decay)", "dpsgd-f", 0.0f},
        {"DP-SGD(F) + dense decay", "dpsgd-f", 0.1f},
    };

    TablePrinter table("Weight decay cost, " + humanBytes(table_bytes) +
                       " tables, batch 1024");
    table.setHeader({"configuration", "sec/iter", "update s/iter"});
    for (const auto &c : cases) {
        RunSpec spec;
        spec.algo = c.algo;
        spec.model = ModelConfig::mlperfBench(table_bytes);
        spec.batch = 1024;
        spec.iters = 3;
        spec.warmup = 1;
        spec.hyper.weightDecay = c.decay;
        const RunStats s = runMeasured(spec);
        const double update =
            (s.timer.seconds(Stage::NoiseSampling) +
             s.timer.seconds(Stage::NoisyGradGen) +
             s.timer.seconds(Stage::NoisyGradUpdate)) /
            static_cast<double>(s.iters);
        table.addRow({c.label, TablePrinter::num(s.secondsPerIter(), 4),
                      TablePrinter::num(update, 4)});
    }
    table.print(std::cout);
    std::printf("\nExpected shape: decay adds ~nothing to either engine "
                "(folded into existing passes), but only LazyDP's pass "
                "is sparse -- the eager engine still streams the whole "
                "table. Equivalence with eager decay is proven in "
                "tests/core/decay_test.cc.\n");
    return 0;
}
