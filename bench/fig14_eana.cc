/**
 * @file
 * Paper Figure 14: LazyDP vs EANA across batch sizes. EANA noises only
 * accessed rows (sparse update, like LazyDP) but thereby weakens the
 * privacy guarantee; LazyDP pays only a small premium (27-37% in the
 * paper) for full DP-SGD-equivalent protection.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/string_util.h"

using namespace lazydp;
using namespace lazydp::bench;

int
main()
{
    const std::uint64_t table_bytes = 960ull << 20;
    printPreamble("Figure 14", "LazyDP vs EANA");

    const char *algos[] = {"sgd", "eana", "lazydp", "dpsgd-f"};
    const std::size_t batches[] = {1024, 2048, 4096};

    TablePrinter table("Figure 14: training time, " +
                       humanBytes(table_bytes) +
                       " tables (normalized to SGD@2048)");
    table.setHeader({"algo", "batch", "sec/iter", "vs SGD@2048",
                     "lazydp/eana"});

    double ref = 0.0;
    std::vector<std::tuple<std::string, std::size_t, double>> rows;
    for (const char *algo : algos) {
        for (const std::size_t batch : batches) {
            RunSpec spec;
            spec.algo = algo;
            spec.model = ModelConfig::mlperfBench(table_bytes);
            spec.batch = batch;
            spec.iters = 3;
            spec.warmup = 1;
            const RunStats s = runMeasured(spec);
            if (std::string(algo) == "sgd" && batch == 2048)
                ref = s.secondsPerIter();
            rows.emplace_back(algo, batch, s.secondsPerIter());
        }
    }
    auto find = [&](const std::string &a, std::size_t b) {
        for (const auto &[algo, batch, sec] : rows)
            if (algo == a && batch == b)
                return sec;
        return 0.0;
    };
    for (const auto &[algo, batch, sec] : rows) {
        std::string ratio = "-";
        if (algo == "lazydp") {
            ratio = TablePrinter::num(sec / find("eana", batch), 2);
        }
        table.addRow({algo, std::to_string(batch),
                      TablePrinter::num(sec, 4),
                      TablePrinter::num(sec / ref, 2), ratio});
    }

    table.print(std::cout);
    std::printf("\nPaper anchors: EANA 1.3-2.4x SGD; LazyDP 1.7-3.1x "
                "SGD -- i.e. a 1.27-1.37x premium over EANA while "
                "keeping the full DP-SGD guarantee.\n");
    return 0;
}
