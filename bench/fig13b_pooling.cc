/**
 * @file
 * Paper Figure 13(b): sensitivity to the embedding pooling factor
 * (1/10/20/30 gathers per table). SGD and LazyDP grow with pooling
 * (more gather/update traffic); DP-SGD(F) barely changes because its
 * dense noisy update already dwarfs the gather cost -- so the
 * LazyDP-vs-DP-SGD gap narrows at high pooling (16.7x at pooling 30 in
 * the paper).
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

using namespace lazydp;
using namespace lazydp::bench;

int
main()
{
    const std::uint64_t table_bytes = 960ull << 20;
    printPreamble("Figure 13(b)", "sensitivity to pooling factor");

    const std::size_t poolings[] = {1, 10, 20, 30};
    const char *algos[] = {"sgd", "lazydp", "dpsgd-f"};

    TablePrinter table("Figure 13(b): training time vs pooling "
                       "(normalized to SGD pooling 1)");
    table.setHeader({"pooling", "algo", "sec/iter", "vs SGD p1",
                     "lazydp speedup"});

    double ref = 0.0;
    for (const std::size_t pooling : poolings) {
        double lazy_sec = 0.0;
        double f_sec = 0.0;
        for (const char *algo : algos) {
            RunSpec spec;
            spec.algo = algo;
            spec.model = ModelConfig::mlperfBench(table_bytes);
            spec.model.pooling = pooling;
            spec.batch = 1024;
            spec.iters = 3;
            spec.warmup = 1;
            const RunStats s = runMeasured(spec);
            const double sec = s.secondsPerIter();
            if (ref == 0.0 && std::string(algo) == "sgd")
                ref = sec;
            if (std::string(algo) == "lazydp")
                lazy_sec = sec;
            if (std::string(algo) == "dpsgd-f")
                f_sec = sec;
            table.addRow({std::to_string(pooling), algo,
                          TablePrinter::num(sec, 4),
                          TablePrinter::num(sec / ref, 1), "-"});
        }
        table.addRow({std::to_string(pooling), "(F / LazyDP)", "-", "-",
                      TablePrinter::num(f_sec / lazy_sec, 1) + "x"});
    }

    table.print(std::cout);
    std::printf("\nPaper anchors: SGD/LazyDP grow ~6.5x/7x from "
                "pooling 1->30; DP-SGD(F) nearly flat; LazyDP speedup "
                "narrows to 16.7x at pooling 30 (still large).\n");
    return 0;
}
