/**
 * @file
 * Paper Figure 13(a): sensitivity to embedding-table size
 * (24/48/96/192 GB in the paper). SGD and LazyDP stay flat; DP-SGD(F)
 * grows linearly and goes OOM at 192 GB on the paper's 256 GB host
 * (table + dense noisy-gradient tensor no longer fit).
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

using namespace lazydp;
using namespace lazydp::bench;

int
main()
{
    printPreamble("Figure 13(a)", "sensitivity to table size");

    // paper sizes / 100 measured; paper sizes modeled
    const std::uint64_t real_sizes[] = {240ull << 20, 480ull << 20,
                                        960ull << 20, 1920ull << 20};
    const std::uint64_t paper_sizes[] = {24ull << 30, 48ull << 30,
                                         96ull << 30, 192ull << 30};
    const char *algos[] = {"sgd", "lazydp", "dpsgd-f"};

    TablePrinter table(
        "Figure 13(a): training time vs table size (normalized to SGD "
        "at smallest size)");
    table.setHeader({"table size", "algo", "mode", "sec/iter",
                     "vs SGD"});

    double ref = 0.0;
    RunStats f_stats;
    RunStats lazy_stats;
    ModelConfig last_model;
    for (const std::uint64_t bytes : real_sizes) {
        for (const char *algo : algos) {
            RunSpec spec;
            spec.algo = algo;
            spec.model = ModelConfig::mlperfBench(bytes);
            spec.batch = 2048;
            spec.iters = 3;
            spec.warmup = 1;
            const RunStats s = runMeasured(spec);
            if (ref == 0.0 && std::string(algo) == "sgd")
                ref = s.secondsPerIter();
            if (std::string(algo) == "dpsgd-f")
                f_stats = s;
            if (std::string(algo) == "lazydp")
                lazy_stats = s;
            last_model = spec.model;
            table.addRow({humanBytes(bytes), algo, "measured",
                          TablePrinter::num(s.secondsPerIter(), 4),
                          TablePrinter::num(s.secondsPerIter() / ref,
                                            1)});
        }
    }

    // Paper-size rows: SGD & LazyDP size-independent; DP-SGD(F) linear
    // until it exceeds the paper host's 256 GB (table + dense noisy
    // gradient = 2x table bytes).
    for (const std::uint64_t bytes : paper_sizes) {
        const double lazy_sec = modeledLazySeconds(
            lazy_stats, last_model, 2048, true, bytes);
        table.addRow({humanBytes(bytes), "lazydp", "modeled",
                      TablePrinter::num(lazy_sec, 4),
                      TablePrinter::num(lazy_sec / ref, 1)});
        if (2 * bytes > 256ull << 30) {
            table.addRow({humanBytes(bytes), "dpsgd-f", "modeled",
                          "OOM", "OOM (2x table > 256 GB host)"});
        } else {
            const double sec = modeledEagerSeconds(f_stats, last_model,
                                                   bytes, 2048);
            table.addRow({humanBytes(bytes), "dpsgd-f", "modeled",
                          TablePrinter::num(sec, 4),
                          TablePrinter::num(sec / ref, 1)});
        }
    }

    table.print(std::cout);
    std::printf("\nPaper anchors: SGD/LazyDP flat (~1x / ~2.1-2.3x); "
                "DP-SGD(F) 68x -> 129x -> 259x -> OOM.\n");
    return 0;
}
