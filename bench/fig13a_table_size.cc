/**
 * @file
 * Paper Figure 13(a): sensitivity to embedding-table size
 * (24/48/96/192 GB in the paper). SGD and LazyDP stay flat; DP-SGD(F)
 * grows linearly and goes OOM at 192 GB on the paper's 256 GB host
 * (table + dense noisy-gradient tensor no longer fit).
 *
 * Out-of-core extension: a third section runs the SAME model with the
 * tables capped to a DRAM hot tier far below the table size (cold tier
 * file-backed, --cold-path / --hot-mb) under Zipf skew -- the regime
 * where the paper's host would be out of memory. With the
 * lookahead-driven prefetcher on, prepare(i+1)'s exact next-batch row
 * set is warmed while apply(i) runs, so steady-state promotions land
 * on warmed pages and the per-iteration cost stays within ~1.2x of the
 * all-DRAM run; the prefetch-off leg shows the synchronous-fault worst
 * case the prefetcher is hiding.
 *
 * Emits BENCH_fig13a.json (see --out) with every measured/modeled row
 * plus per-leg tier counters (hit rate, promotions, write-backs).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/cli.h"
#include "common/string_util.h"

using namespace lazydp;
using namespace lazydp::bench;

namespace {

/** One row of the size-sweep (measured or modeled). */
struct SizeRow
{
    std::uint64_t bytes = 0;
    std::string algo;
    std::string mode;    //!< "measured" | "modeled"
    double secPerIter = 0.0;
    bool oom = false;
};

/** One out-of-core leg: dram baseline or a tiered configuration. */
struct OocLeg
{
    std::string algo;
    std::string leg;     //!< "dram" | "tiered" | "tiered-noprefetch"
    double secPerIter = 0.0;
    TierStats tier;
};

void
emitJson(const std::string &path, std::size_t batch,
         const std::vector<SizeRow> &rows,
         std::uint64_t ooc_table_bytes, std::uint64_t ooc_hot_bytes,
         const std::vector<OocLeg> &legs)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    os << "{\n  \"bench\": \"fig13a_table_size\",\n";
    os << "  \"batch\": " << batch << ",\n";
    os << "  \"size_sweep\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SizeRow &r = rows[i];
        os << "    { \"table_mb\": " << (r.bytes >> 20)
           << ", \"algo\": \"" << r.algo << "\", \"mode\": \""
           << r.mode << "\", ";
        if (r.oom)
            os << "\"oom\": true }";
        else
            os << "\"sec_per_iter\": " << r.secPerIter << " }";
        os << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"out_of_core\": {\n";
    os << "    \"table_mb\": " << (ooc_table_bytes >> 20) << ",\n";
    os << "    \"hot_mb\": " << (ooc_hot_bytes >> 20) << ",\n";
    os << "    \"access\": \"zipf\",\n";
    os << "    \"legs\": [\n";
    for (std::size_t i = 0; i < legs.size(); ++i) {
        const OocLeg &l = legs[i];
        const TierStats &t = l.tier;
        os << "      { \"algo\": \"" << l.algo << "\", \"leg\": \""
           << l.leg << "\", \"sec_per_iter\": " << l.secPerIter
           << ",\n        \"tier\": { \"hit_rate\": " << t.hitRate()
           << ", \"hits\": " << t.hits
           << ", \"promotions\": " << t.promotions
           << ", \"warmed_promotions\": " << t.warmedPromotions
           << ", \"evictions\": " << t.evictions
           << ", \"writebacks\": " << t.writebacks
           << ", \"overcommits\": " << t.overcommits << " } }"
           << (i + 1 < legs.size() ? "," : "") << "\n";
    }
    os << "    ]\n  }\n}\n";
    std::printf("\nwrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv,
                       {"iters", "out", "cold-path", "hot-mb",
                        "ooc-table-mb", "help"});
    if (args.has("help")) {
        std::printf(
            "fig13a_table_size [--iters=N (measured iters per point)]\n"
            "                  [--out=BENCH_fig13a.json]\n"
            "                  [--cold-path=DIR (out-of-core cold-tier "
            "directory)]\n"
            "                  [--hot-mb=N (out-of-core DRAM hot "
            "budget)]\n"
            "                  [--ooc-table-mb=N (out-of-core table "
            "size)]\n");
        return 0;
    }
    const std::uint64_t iters = args.getU64("iters", 3);
    const std::string out_path =
        args.getString("out", "BENCH_fig13a.json");
    const std::string cold_path =
        args.getString("cold-path", "/tmp/lazydp_fig13a_cold");
    const std::uint64_t ooc_table_bytes =
        args.getU64("ooc-table-mb", 480) << 20;
    // Default hot budget: 1/8 of the table -- well past the point
    // where the working set cannot all be DRAM-resident.
    const std::uint64_t ooc_hot_bytes =
        args.getU64("hot-mb", (ooc_table_bytes >> 20) / 8) << 20;

    printPreamble("Figure 13(a)", "sensitivity to table size");

    // paper sizes / 100 measured; paper sizes modeled
    const std::uint64_t real_sizes[] = {240ull << 20, 480ull << 20,
                                        960ull << 20, 1920ull << 20};
    const std::uint64_t paper_sizes[] = {24ull << 30, 48ull << 30,
                                         96ull << 30, 192ull << 30};
    const char *algos[] = {"sgd", "lazydp", "dpsgd-f"};

    std::vector<SizeRow> json_rows;

    TablePrinter table(
        "Figure 13(a): training time vs table size (normalized to SGD "
        "at smallest size)");
    table.setHeader({"table size", "algo", "mode", "sec/iter",
                     "vs SGD"});

    double ref = 0.0;
    RunStats f_stats;
    RunStats lazy_stats;
    ModelConfig last_model;
    for (const std::uint64_t bytes : real_sizes) {
        for (const char *algo : algos) {
            RunSpec spec;
            spec.algo = algo;
            spec.model = ModelConfig::mlperfBench(bytes);
            spec.batch = 2048;
            spec.iters = iters;
            spec.warmup = 1;
            const RunStats s = runMeasured(spec);
            if (ref == 0.0 && std::string(algo) == "sgd")
                ref = s.secondsPerIter();
            if (std::string(algo) == "dpsgd-f")
                f_stats = s;
            if (std::string(algo) == "lazydp")
                lazy_stats = s;
            last_model = spec.model;
            table.addRow({humanBytes(bytes), algo, "measured",
                          TablePrinter::num(s.secondsPerIter(), 4),
                          TablePrinter::num(s.secondsPerIter() / ref,
                                            1)});
            json_rows.push_back(
                {bytes, algo, "measured", s.secondsPerIter(), false});
        }
    }

    // Paper-size rows: SGD & LazyDP size-independent; DP-SGD(F) linear
    // until it exceeds the paper host's 256 GB (table + dense noisy
    // gradient = 2x table bytes).
    for (const std::uint64_t bytes : paper_sizes) {
        const double lazy_sec = modeledLazySeconds(
            lazy_stats, last_model, 2048, true, bytes);
        table.addRow({humanBytes(bytes), "lazydp", "modeled",
                      TablePrinter::num(lazy_sec, 4),
                      TablePrinter::num(lazy_sec / ref, 1)});
        json_rows.push_back(
            {bytes, "lazydp", "modeled", lazy_sec, false});
        if (2 * bytes > 256ull << 30) {
            table.addRow({humanBytes(bytes), "dpsgd-f", "modeled",
                          "OOM", "OOM (2x table > 256 GB host)"});
            json_rows.push_back({bytes, "dpsgd-f", "modeled", 0.0,
                                 true});
        } else {
            const double sec = modeledEagerSeconds(f_stats, last_model,
                                                   bytes, 2048);
            table.addRow({humanBytes(bytes), "dpsgd-f", "modeled",
                          TablePrinter::num(sec, 4),
                          TablePrinter::num(sec / ref, 1)});
            json_rows.push_back({bytes, "dpsgd-f", "modeled", sec,
                                 false});
        }
    }

    table.print(std::cout);
    std::printf("\nPaper anchors: SGD/LazyDP flat (~1x / ~2.1-2.3x); "
                "DP-SGD(F) 68x -> 129x -> 259x -> OOM.\n");

    // --- Out-of-core extension: table past the DRAM hot budget -------
    //
    // Three legs per engine under Zipf skew: all-DRAM baseline, tiered
    // with the lookahead prefetcher (prepare()'s next-batch row set is
    // the oracle), and tiered with prefetch off (every promotion
    // faults synchronously). Bit-identical trained model in all three
    // (asserted by tests/integration/tiered_parity_test); this section
    // measures what the prefetcher buys in wall time.
    (void)std::system(("mkdir -p " + cold_path).c_str());

    TablePrinter ooc(
        "Out-of-core: " + humanBytes(ooc_table_bytes) + " table, " +
        humanBytes(ooc_hot_bytes) +
        " DRAM hot tier, Zipf skew (tiered legs run past the hot "
        "budget; prefetch hides the cold-tier latency)");
    ooc.setHeader({"algo", "leg", "sec/iter", "vs dram", "hit rate",
                   "promotions", "warmed", "write-backs"});

    std::vector<OocLeg> legs;
    for (const char *algo : {"sgd", "lazydp"}) {
        double dram_sec = 0.0;
        for (const char *leg :
             {"dram", "tiered", "tiered-noprefetch"}) {
            RunSpec spec;
            spec.algo = algo;
            spec.model = ModelConfig::mlperfBench(ooc_table_bytes);
            spec.access = accessPreset("zipf");
            spec.batch = 2048;
            spec.iters = iters;
            // Extra warmup so the hot tier reaches steady state (the
            // Zipf head resident, the tail churning) before measuring.
            spec.warmup = 2;
            spec.pipeline = true; // prefetch overlaps apply()
            spec.threads = 4;
            if (std::string(leg) != "dram") {
                spec.coldDir = cold_path + "/" + algo + "_" + leg;
                (void)std::system(
                    ("mkdir -p " + spec.coldDir).c_str());
                spec.hotBytes = ooc_hot_bytes;
                spec.tierPrefetch =
                    std::string(leg) == "tiered";
            }
            const RunStats s = runMeasured(spec);
            if (std::string(leg) == "dram")
                dram_sec = s.secondsPerIter();
            const TierStats &t = s.tierStats;
            ooc.addRow(
                {algo, leg,
                 TablePrinter::num(s.secondsPerIter(), 4),
                 TablePrinter::num(s.secondsPerIter() / dram_sec, 2),
                 TablePrinter::num(t.hitRate(), 4),
                 TablePrinter::num(static_cast<double>(t.promotions),
                                   0),
                 TablePrinter::num(
                     static_cast<double>(t.warmedPromotions), 0),
                 TablePrinter::num(static_cast<double>(t.writebacks),
                                   0)});
            legs.push_back({algo, leg, s.secondsPerIter(), t});
        }
    }
    ooc.print(std::cout);
    std::printf(
        "\nExpectation: tiered-with-prefetch within ~1.2x of dram "
        "(warmed promotions dominate); tiered-noprefetch is the "
        "synchronous-fault worst case.\n");

    emitJson(out_path, 2048, json_rows, ooc_table_bytes,
             ooc_hot_bytes, legs);
    return 0;
}
