/**
 * @file
 * Serving-tier benchmark: throughput + tail latency vs. batching
 * policy, serve-only vs. serve-while-train, full vs. delta snapshots.
 *
 * Four measurement groups, one JSON:
 *
 *  1. Batching-policy sweep (nobatch / balanced / throughput), each
 *     measured on a CLOSED loop (one-in-flight clients; demand-limited
 *     throughput) AND an OPEN loop (fixed arrival schedule; latency
 *     from the scheduled arrival, the coordinated-omission-safe
 *     number) against a frozen snapshot.
 *  2. Serve-while-train: the closed-loop legs repeated while a LazyDP
 *     trainer concurrently retrains and republishes the model.
 *  3. Freshness: --publish-every=1 serve-while-train, full vs. delta
 *     snapshot stores -- what per-iteration serving freshness costs
 *     the trainer under each publication mode.
 *  4. Publish-cost scaling: mean publish wall time vs. embedding-table
 *     size for both modes (no serving) -- full grows with the table,
 *     delta with the rows the lot actually dirtied.
 *  5. SLO scenarios: open-loop runs through the scripted traffic
 *     profiles (steady / diurnal / flash crowd / skew drift / mixed
 *     two-class), each with admission control OFF (unbounded queues,
 *     deadline expiry only) and ON (bounded per-lane queues +
 *     drop-oldest shedding). The base rate derives from the measured
 *     balanced closed-loop capacity so the flash burst demonstrably
 *     overloads; the headline numbers are SLO attainment and the
 *     Ok-request p99 -- bounded queues trade shed requests for a
 *     bounded tail.
 *  6a. Telemetry overhead: the balanced closed-loop serve-only leg
 *     measured with the metrics registry off (the default) and on
 *     (what --stats-out / the governor's shared scrape pay),
 *     interleaved and best-of-N per mode (closed-loop throughput on a
 *     shared host is noisier than the effect). The headline delta_pct
 *     is the registry's hot-path cost; the budget is <= 2%.
 *
 *  6. Isolation: every scenario re-run OPEN-LOOP at the same 0.65x
 *     operating point while the trainer concurrently retrains, once
 *     per IsolationPolicy (none / pin / throttle / pin+throttle).
 *     Throttle legs attach the IsolationGovernor to
 *     TrainOptions::iterationGate with the throttled rate derived
 *     from the measured natural training rate (a fixed constant could
 *     land ABOVE the natural rate on a fast host and never pause).
 *     The headline: pin+throttle recovers attainment/p99 the trainer
 *     stole, at the cost of train_sec_per_iter while attainment is
 *     below the engage threshold.
 *
 * Emits BENCH_serving.json.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "core/factory.h"
#include "data/data_loader.h"
#include "obs/metrics.h"
#include "serve/isolation_governor.h"
#include "serve/load_generator.h"
#include "serve/serve_engine.h"
#include "serve/snapshot_store.h"
#include "train/dirty_tracker.h"
#include "train/trainer.h"

using namespace lazydp;

namespace {

struct BenchSetup
{
    ModelConfig model;
    std::uint64_t requests;
    std::size_t serveThreads;
    std::size_t concurrency;
    double openQps;
    std::uint64_t trainIters;
    std::size_t trainBatch;
    std::size_t trainThreads;
    std::uint64_t seed;
};

/** Everything one (policy, loop, train, store-mode) run produces. */
struct Measurement
{
    LoadReport report;
    double meanBatch = 0.0;
    double trainSecPerIter = 0.0;
    std::uint64_t versions = 0;
    std::uint64_t stolenBatches = 0;
    PublishTotals publish;
    GovernorStats gov; //!< zeros unless the leg ran a governor
};

struct PolicyResult
{
    std::string name;
    BatchPolicy policy;
    Measurement closed;     //!< closed loop, frozen snapshot
    Measurement open;       //!< open loop, frozen snapshot
    Measurement whileTrain; //!< closed loop, concurrent training
};

/** Full-vs-delta at --publish-every=1 (group 3). */
struct FreshnessResult
{
    std::string mode;
    Measurement m;
};

/** SLO-attainment legs of one traffic scenario (group 5). */
struct ScenarioResult
{
    Scenario scenario = Scenario::Steady;
    double baseQps = 0.0;
    Measurement off; //!< unbounded queues (deadline expiry only)
    Measurement on;  //!< bounded queues + drop-oldest shedding
};

// Group-5 admission settings: one SLO class (5 ms), bounded per-lane
// queues, drop-oldest shedding. Mixed adds a second class at priority
// 0 (sheds first) with the same deadline.
constexpr std::uint64_t kScenarioSloUs = 5000;
constexpr std::size_t kScenarioQueueCap = 32;

/** One scenario's isolation-policy legs (group 6). */
struct IsolationLeg
{
    IsolationPolicy policy = IsolationPolicy::None;
    Measurement m;
};

struct IsolationResult
{
    Scenario scenario = Scenario::Steady;
    double baseQps = 0.0;
    std::vector<IsolationLeg> legs;
};

/** Registry on-vs-off serving throughput (group 6a). */
struct TelemetryOverhead
{
    double qpsOff = 0.0; //!< metrics registry disabled (default)
    double qpsOn = 0.0;  //!< registry enabled, every counter mirrored

    double
    deltaPct() const
    {
        return qpsOff > 0.0 ? (qpsOff - qpsOn) / qpsOff * 100.0 : 0.0;
    }
};

/** One table size of the publish-cost sweep (group 4). */
struct ScalePoint
{
    std::uint64_t tableMb = 0;
    double fullPublishMs = 0.0;
    double deltaPublishMs = 0.0;
    std::uint64_t fullRowsPerPublish = 0;
    std::uint64_t deltaRowsPerPublish = 0;
};

/** One (policy, loop, train, store-mode) measurement. */
Measurement
measure(const BenchSetup &setup, const BatchPolicy &policy,
        double open_qps, bool train_concurrently,
        SnapshotMode snap_mode, std::uint64_t publish_every)
{
    DlrmModel model(setup.model, setup.seed);
    SnapshotOptions snap_opts;
    snap_opts.mode = snap_mode;
    ModelSnapshotStore store(snap_opts);
    store.publish(model, 0);

    ThreadPool pool(setup.trainThreads);
    ExecContext exec(&pool);
    ServeOptions serve_opts;
    serve_opts.threads = setup.serveThreads;
    serve_opts.batch = policy;
    ServeEngine engine(store, setup.model, pool, serve_opts);

    LoadOptions load_opts;
    load_opts.requests = setup.requests;
    load_opts.qps = open_qps;
    load_opts.concurrency = setup.concurrency;
    load_opts.seed = setup.seed + 0x10AD;
    LoadGenerator generator(engine, setup.model, load_opts);

    Measurement out;
    std::thread load_thread(
        [&generator, &out] { out.report = generator.run(); });

    if (train_concurrently) {
        SyntheticDataset dataset(bench::datasetFor(
            setup.model, AccessConfig::uniform(), setup.trainBatch,
            setup.seed + 0xDA7A));
        SequentialLoader loader(dataset);
        TrainHyper hyper;
        hyper.noiseSeed = setup.seed * 31 + 7;
        auto algo = makeAlgorithm("lazydp", model, hyper);
        Trainer trainer(*algo, loader, &exec);
        TrainOptions options;
        options.publishEveryIters = publish_every;
        options.snapshotStore = &store;
        options.recordLosses = false;
        const TrainResult result =
            trainer.run(setup.trainIters, options);
        out.trainSecPerIter = result.secondsPerIteration();
    }
    load_thread.join();
    engine.stop();
    out.meanBatch = engine.stats().meanBatch();
    out.stolenBatches = engine.stats().stolenBatches;
    out.versions = store.version();
    out.publish = store.totals();
    return out;
}

/**
 * One group-5 leg: open loop through @p scenario at @p qps against a
 * frozen snapshot, every request carrying the scenario SLO class.
 * With @p shed the per-lane queues are capped (kScenarioQueueCap,
 * drop-oldest); without it admission is unbounded and only deadline
 * expiry protects the tail.
 */
Measurement
measureScenario(const BenchSetup &setup, Scenario scenario, double qps,
                bool shed)
{
    DlrmModel model(setup.model, setup.seed);
    SnapshotOptions snap_opts;
    ModelSnapshotStore store(snap_opts);
    store.publish(model, 0);

    ThreadPool pool(setup.trainThreads);
    ServeOptions serve_opts;
    serve_opts.threads = setup.serveThreads;
    serve_opts.batch = BatchPolicy{8, 200};
    if (shed) {
        serve_opts.batch.queueCap = kScenarioQueueCap;
        serve_opts.batch.shedPolicy = ShedPolicy::DropOldest;
    }
    ServeEngine engine(store, setup.model, pool, serve_opts);

    LoadOptions load_opts;
    load_opts.requests = setup.requests;
    load_opts.qps = qps;
    load_opts.seed = setup.seed + 0x10AD;
    load_opts.scenario = scenario;
    load_opts.slo = SloClass{kScenarioSloUs, 1};
    load_opts.lowSlo = SloClass{kScenarioSloUs, 0};
    LoadGenerator generator(engine, setup.model, load_opts);

    Measurement out;
    out.report = generator.run();
    engine.stop();
    out.meanBatch = engine.stats().meanBatch();
    out.stolenBatches = engine.stats().stolenBatches;
    return out;
}

/**
 * One group-6 leg: open loop through @p scenario at the group-5
 * operating point (same rate, SLO class and bounded drop-oldest
 * queues) while a LazyDP trainer concurrently retrains and
 * republishes, under isolation @p policy. Pin legs partition the
 * host's CPUs with defaultCoreSplit (a no-op below 2 CPUs); throttle
 * legs attach an IsolationGovernor to TrainOptions::iterationGate at
 * @p throttled_iters_per_sec. Training spans the load window
 * (trainIters at the measured natural rate outlasts requests/qps), so
 * every request is served under contention -- or under whatever the
 * policy recovered.
 */
Measurement
measureIsolation(const BenchSetup &setup, Scenario scenario, double qps,
                 IsolationPolicy policy, double throttled_iters_per_sec)
{
    DlrmModel model(setup.model, setup.seed);
    SnapshotOptions snap_opts;
    ModelSnapshotStore store(snap_opts);
    store.publish(model, 0);

    ThreadPool pool(setup.trainThreads);
    ExecContext exec(&pool);
    if (policyPins(policy)) {
        const CoreSplit split = defaultCoreSplit(setup.serveThreads);
        applyCorePinning(pool, split.train, split.serve);
    }

    ServeOptions serve_opts;
    serve_opts.threads = setup.serveThreads;
    serve_opts.batch = BatchPolicy{8, 200};
    serve_opts.batch.queueCap = kScenarioQueueCap;
    serve_opts.batch.shedPolicy = ShedPolicy::DropOldest;
    ServeEngine engine(store, setup.model, pool, serve_opts);

    LoadOptions load_opts;
    // 4x the group-5 request count: the longer window tracks the
    // whole concurrent training run instead of sampling a fifth of
    // it, which keeps the leg-to-leg attainment deltas above
    // run-to-run noise.
    load_opts.requests = setup.requests * 4;
    load_opts.qps = qps;
    load_opts.seed = setup.seed + 0x10AD;
    load_opts.scenario = scenario;
    load_opts.slo = SloClass{kScenarioSloUs, 1};
    load_opts.lowSlo = SloClass{kScenarioSloUs, 0};
    LoadGenerator generator(engine, setup.model, load_opts);

    std::unique_ptr<IsolationGovernor> governor;
    if (policyThrottles(policy)) {
        GovernorOptions gov_opts;
        gov_opts.throttledItersPerSec = throttled_iters_per_sec;
        governor = std::make_unique<IsolationGovernor>(
            [&engine] { return engine.stats(); }, gov_opts);
    }

    Measurement out;
    std::thread load_thread(
        [&generator, &out] { out.report = generator.run(); });

    SyntheticDataset dataset(bench::datasetFor(
        setup.model, AccessConfig::uniform(), setup.trainBatch,
        setup.seed + 0xDA7A));
    SequentialLoader loader(dataset);
    TrainHyper hyper;
    hyper.noiseSeed = setup.seed * 31 + 7;
    auto algo = makeAlgorithm("lazydp", model, hyper);
    Trainer trainer(*algo, loader, &exec);
    TrainOptions options;
    options.publishEveryIters = 5;
    options.snapshotStore = &store;
    options.recordLosses = false;
    if (governor != nullptr)
        options.iterationGate = governor->gate();
    const TrainResult result = trainer.run(setup.trainIters, options);
    out.trainSecPerIter = result.secondsPerIteration();

    load_thread.join();
    if (governor != nullptr) {
        governor->stop();
        out.gov = governor->stats();
    }
    engine.stop();
    out.meanBatch = engine.stats().meanBatch();
    out.stolenBatches = engine.stats().stolenBatches;
    out.versions = store.version();
    return out;
}

/**
 * Group 6a: what the metrics registry costs the serving hot path.
 * The balanced closed-loop serve-only leg is the most counter-dense
 * path in the system (every request mirrors served / deadline /
 * latency, every batch the forward + batch-size histograms), measured
 * with obs::setMetricsEnabled off vs on. Best of @p reps repetitions
 * per mode damps closed-loop run-to-run noise, which on a shared host
 * easily exceeds the effect being measured.
 */
TelemetryOverhead
measureTelemetryOverhead(const BenchSetup &setup, int reps)
{
    const BatchPolicy policy{8, 200};
    TelemetryOverhead out;
    for (int r = 0; r < reps; ++r) {
        obs::setMetricsEnabled(false);
        const Measurement off =
            measure(setup, policy, /*open_qps=*/0.0, /*train=*/false,
                    SnapshotMode::Full, 5);
        out.qpsOff = std::max(out.qpsOff, off.report.qps());
        obs::setMetricsEnabled(true);
        const Measurement on =
            measure(setup, policy, /*open_qps=*/0.0, /*train=*/false,
                    SnapshotMode::Full, 5);
        out.qpsOn = std::max(out.qpsOn, on.report.qps());
    }
    obs::setMetricsEnabled(false);
    return out;
}

/**
 * Steady-state publish cost at --publish-every=1 for @p table_mb
 * tables: mean wall milliseconds (and rows copied) per publish, with
 * the dirty set driven by real lot access patterns.
 *
 * Publish cost depends only on the dirty set, not on what the update
 * wrote, so this drives the store directly -- mark the rows each lot
 * touches, publish, repeat -- without paying for actual training
 * (which at the large end of the sweep would dwarf the thing being
 * measured). The first publish after markAllDirty (the full-copy run
 * start every Trainer::run performs) is absorbed OUTSIDE the timed
 * window: this measures the steady state the per-iteration-freshness
 * claim is about. A small lot (64 examples), skewed access (the
 * paper's production regime) and fine 32-row pages keep the dirty set
 * bounded by the LOT while the table grows -- the regime where
 * full-copy cost follows the table and delta cost does not.
 */
void
scalePoint(const BenchSetup &setup, std::uint64_t table_mb,
           SnapshotMode snap_mode, double &publish_ms,
           std::uint64_t &rows_per_publish)
{
    const std::size_t kPageRows = 32;
    const ModelConfig cfg = ModelConfig::mlperfBench(table_mb << 20);
    DlrmModel model(cfg, setup.seed);
    SyntheticDataset dataset(
        bench::datasetFor(cfg, AccessConfig::criteoHigh(),
                          /*batch=*/64, setup.seed + 0xDA7A));
    SequentialLoader loader(dataset);

    SnapshotOptions snap_opts;
    snap_opts.mode = snap_mode;
    snap_opts.pageRows = kPageRows;
    ModelSnapshotStore store(snap_opts);
    std::unique_ptr<DirtyRowTracker> tracker;
    if (snap_mode == SnapshotMode::Delta) {
        tracker = DirtyRowTracker::forModel(cfg, kPageRows);
        tracker->markAllDirty();
    }
    store.publish(model, 0, tracker.get()); // absorb the full copy

    double seconds = 0.0;
    std::uint64_t rows = 0;
    for (std::uint64_t i = 1; i <= setup.trainIters; ++i) {
        const MiniBatch lot = loader.next();
        if (tracker != nullptr)
            for (std::size_t t = 0; t < cfg.numTables; ++t)
                tracker->markRows(t, lot.tableIndices(t));
        const PublishReceipt r =
            store.publish(model, i, tracker.get());
        seconds += r.seconds;
        rows += r.rowsCopied;
    }
    publish_ms =
        seconds * 1e3 / static_cast<double>(setup.trainIters);
    rows_per_publish = rows / setup.trainIters;
}

void
emitJson(const std::string &path, const BenchSetup &setup,
         const std::vector<PolicyResult> &results,
         const std::vector<FreshnessResult> &freshness,
         const std::vector<ScalePoint> &scaling,
         const std::vector<ScenarioResult> &scenarios,
         const std::vector<IsolationResult> &isolation,
         double throttled_iters_per_sec,
         const TelemetryOverhead &telemetry)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    auto mode = [&os](const char *key, const Measurement &m) {
        os << "      \"" << key << "\": { \"qps\": " << m.report.qps()
           << ", \"p50_ms\": " << m.report.latency.p50 * 1e3
           << ", \"p95_ms\": " << m.report.latency.p95 * 1e3
           << ", \"p99_ms\": " << m.report.latency.p99 * 1e3
           << ", \"p999_ms\": " << m.report.latency.p999 * 1e3
           << ", \"mean_batch\": " << m.meanBatch
           << ", \"attainment\": " << m.report.attainment()
           << ", \"ok\": " << m.report.ok
           << ", \"shed\": " << m.report.shed
           << ", \"expired\": " << m.report.expired << " }";
    };
    os << "{\n  \"bench\": \"opt_serving\",\n";
    os << "  \"model\": \"" << setup.model.name << "\",\n";
    os << "  \"requests\": " << setup.requests << ",\n";
    os << "  \"serve_threads\": " << setup.serveThreads << ",\n";
    os << "  \"concurrency\": " << setup.concurrency << ",\n";
    os << "  \"open_qps\": " << setup.openQps << ",\n";
    os << "  \"train_iters\": " << setup.trainIters << ",\n";
    os << "  \"configs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        os << "    { \"name\": \"" << r.name << "\", \"max_batch\": "
           << r.policy.maxBatch << ", \"max_delay_us\": "
           << r.policy.maxDelayUs << ",\n";
        mode("serve_only_closed", r.closed);
        os << ",\n";
        mode("serve_only_open", r.open);
        os << ",\n";
        mode("serve_while_train", r.whileTrain);
        os << ",\n      \"train_sec_per_iter\": "
           << r.whileTrain.trainSecPerIter
           << ", \"versions_published\": " << r.whileTrain.versions
           << " }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"freshness_publish_every_1\": [\n";
    for (std::size_t i = 0; i < freshness.size(); ++i) {
        const auto &f = freshness[i];
        const auto &p = f.m.publish;
        os << "    { \"snapshot\": \"" << f.mode << "\",\n";
        mode("serve_while_train", f.m);
        os << ",\n      \"train_sec_per_iter\": "
           << f.m.trainSecPerIter
           << ", \"versions_published\": " << f.m.versions
           << ", \"publish_ms_mean\": "
           << (p.publishes == 0
                   ? 0.0
                   : p.seconds * 1e3 /
                         static_cast<double>(p.publishes))
           << ", \"rows_copied\": " << p.rowsCopied
           << ", \"pages_copied\": " << p.pagesCopied
           << ", \"pages_shared\": " << p.pagesShared
           << ", \"buffers_recycled\": "
           << p.snapshotsRecycled + p.pagesRecycled << " }"
           << (i + 1 < freshness.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"publish_scaling\": [\n";
    for (std::size_t i = 0; i < scaling.size(); ++i) {
        const auto &s = scaling[i];
        os << "    { \"table_mb\": " << s.tableMb
           << ", \"full_publish_ms\": " << s.fullPublishMs
           << ", \"delta_publish_ms\": " << s.deltaPublishMs
           << ", \"full_rows_per_publish\": " << s.fullRowsPerPublish
           << ", \"delta_rows_per_publish\": " << s.deltaRowsPerPublish
           << " }" << (i + 1 < scaling.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const auto &s = scenarios[i];
        os << "    { \"scenario\": \"" << scenarioName(s.scenario)
           << "\", \"base_qps\": " << s.baseQps
           << ", \"slo_us\": " << kScenarioSloUs
           << ", \"queue_cap\": " << kScenarioQueueCap
           << ", \"shed_policy\": \"drop-oldest\",\n";
        mode("shed_off", s.off);
        os << ",\n";
        mode("shed_on", s.on);
        os << ",\n      \"stolen_batches\": " << s.on.stolenBatches
           << " }" << (i + 1 < scenarios.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"isolation\": [\n";
    for (std::size_t i = 0; i < isolation.size(); ++i) {
        const auto &s = isolation[i];
        os << "    { \"scenario\": \"" << scenarioName(s.scenario)
           << "\", \"base_qps\": " << s.baseQps
           << ", \"slo_us\": " << kScenarioSloUs
           << ", \"queue_cap\": " << kScenarioQueueCap
           << ", \"throttled_iters_per_sec\": "
           << throttled_iters_per_sec << ",\n      \"legs\": [\n";
        for (std::size_t j = 0; j < s.legs.size(); ++j) {
            const auto &leg = s.legs[j];
            const auto &r = leg.m.report;
            os << "        { \"policy\": \""
               << isolationPolicyName(leg.policy)
               << "\", \"qps\": " << r.qps()
               << ", \"p50_ms\": " << r.latency.p50 * 1e3
               << ", \"p99_ms\": " << r.latency.p99 * 1e3
               << ", \"attainment\": " << r.attainment()
               << ", \"ok\": " << r.ok << ", \"shed\": " << r.shed
               << ", \"expired\": " << r.expired
               << ", \"train_sec_per_iter\": " << leg.m.trainSecPerIter
               << ", \"gov_windows\": " << leg.m.gov.windows
               << ", \"gov_engagements\": " << leg.m.gov.engagements
               << ", \"gov_pause_ms\": "
               << leg.m.gov.pausedSeconds * 1e3 << " }"
               << (j + 1 < s.legs.size() ? "," : "") << "\n";
        }
        os << "      ] }" << (i + 1 < isolation.size() ? "," : "")
           << "\n";
    }
    os << "  ],\n";
    os << "  \"telemetry_overhead\": { \"qps_off\": "
       << telemetry.qpsOff << ", \"qps_on\": " << telemetry.qpsOn
       << ", \"delta_pct\": " << telemetry.deltaPct()
       << ", \"budget_pct\": 2.0 },\n";
    os << "  \"comment\": \"serve_only_closed: demand-limited closed "
          "loop (latency = enqueue-to-completion); serve_only_open: "
          "fixed-rate open loop at open_qps (latency from the "
          "SCHEDULED arrival -- coordinated-omission-safe); "
          "serve_while_train: closed loop while LazyDP retrains and "
          "republishes every 5 iterations; freshness_publish_every_1: "
          "publish after EVERY iteration, full vs delta stores; "
          "publish_scaling: mean publish ms vs table size at "
          "publish-every=1 (full copies the table, delta copies the "
          "rows the lot dirtied); scenarios: open-loop scripted "
          "traffic (base_qps derived from balanced closed-loop "
          "capacity; flash bursts to 8x over the middle fifth) with "
          "slo_us deadline on every request, shed_off = unbounded "
          "queues (deadline expiry only) vs shed_on = per-lane queues "
          "capped at queue_cap with drop-oldest priority shedding; "
          "isolation: every scenario re-run at the same operating "
          "point WHILE LazyDP retrains, one leg per policy (none / "
          "pin = disjoint train/serve core sets / throttle = "
          "attainment-feedback trainer pacing via the iteration gate "
          "/ pin+throttle), gov_* = governor decision counters; "
          "telemetry_overhead: balanced closed loop with the metrics "
          "registry off vs on (interleaved, best of 4 reps each), "
          "delta_pct is the registry's serving hot-path cost against "
          "a 2% budget; "
          "attainment = fraction of completed-accepted requests "
          "(scored or expired; shed requests report through their own "
          "counts) scored within their deadline "
          "(coordinated-omission-safe: open-loop latency counts from "
          "the scheduled arrival), percentiles cover Ok requests "
          "only\"\n";
    os << "}\n";
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv,
                       {"requests", "table-mb", "serve-threads",
                        "concurrency", "open-qps", "scenario-qps",
                        "train-iters", "train-batch", "threads", "seed",
                        "kernels", "out", "help"});
    if (args.has("help")) {
        std::printf(
            "opt_serving [--requests=N] [--table-mb=N] "
            "[--serve-threads=N] [--concurrency=N] [--open-qps=Q] "
            "[--scenario-qps=Q] [--train-iters=N] [--train-batch=N] "
            "[--threads=N] [--seed=N] [--kernels=scalar|avx2|auto] "
            "[--out=BENCH_serving.json]\n");
        return 0;
    }
    args.applyKernels();

    BenchSetup setup;
    const std::uint64_t table_mb = args.getU64("table-mb", 32);
    setup.model = ModelConfig::mlperfBench(table_mb << 20);
    setup.requests = args.getU64("requests", 2000);
    setup.serveThreads = args.getU64("serve-threads", 2);
    setup.concurrency = args.getU64("concurrency", 8);
    setup.openQps = args.getDouble("open-qps", 2000.0);
    setup.trainIters = args.getU64("train-iters", 20);
    setup.trainBatch = args.getU64("train-batch", 256);
    setup.trainThreads = args.getThreads(2);
    setup.seed = args.getU64("seed", 1);
    const std::string out_path =
        args.getString("out", "BENCH_serving.json");

    bench::printPreamble(
        "opt_serving",
        "throughput + tail latency vs. batching policy, closed + open "
        "loops, serve-while-train, full vs. delta snapshot publishing, "
        "SLO attainment across traffic scenarios with shedding off/on "
        "and train-vs-serve isolation policy legs");

    const std::vector<std::pair<std::string, BatchPolicy>> policies = {
        {"nobatch", {1, 0}},
        {"balanced", {8, 200}},
        {"throughput", {32, 1000}},
    };

    std::vector<PolicyResult> results;
    for (const auto &[name, policy] : policies) {
        PolicyResult r;
        r.name = name;
        r.policy = policy;
        r.closed = measure(setup, policy, /*open_qps=*/0.0,
                           /*train=*/false, SnapshotMode::Full, 5);
        r.open = measure(setup, policy, setup.openQps,
                         /*train=*/false, SnapshotMode::Full, 5);
        r.whileTrain = measure(setup, policy, /*open_qps=*/0.0,
                               /*train=*/true, SnapshotMode::Full, 5);
        results.push_back(std::move(r));
    }

    // Freshness: publish after EVERY iteration, full vs delta.
    std::vector<FreshnessResult> freshness;
    const BatchPolicy fresh_policy{8, 200};
    for (const auto mode :
         {SnapshotMode::Full, SnapshotMode::Delta}) {
        FreshnessResult f;
        f.mode = mode == SnapshotMode::Delta ? "delta" : "full";
        f.m = measure(setup, fresh_policy, /*open_qps=*/0.0,
                      /*train=*/true, mode, /*publish_every=*/1);
        freshness.push_back(std::move(f));
    }

    // SLO scenarios: open loop through each scripted traffic profile,
    // shedding off vs on. The base rate defaults to ~65% of the
    // measured balanced closed-loop capacity -- comfortably served at
    // steady rate on THIS host, so the flash burst (8x) is what drives
    // the queues into overload, not a mis-guessed constant.
    const double balanced_qps = results[1].closed.report.qps();
    const double scenario_qps =
        args.getDouble("scenario-qps", 0.65 * balanced_qps);
    std::vector<ScenarioResult> scenarios;
    for (const Scenario sc :
         {Scenario::Steady, Scenario::Diurnal, Scenario::FlashCrowd,
          Scenario::SkewDrift, Scenario::MixedClass}) {
        ScenarioResult s;
        s.scenario = sc;
        s.baseQps = scenario_qps;
        s.off = measureScenario(setup, sc, scenario_qps, /*shed=*/false);
        s.on = measureScenario(setup, sc, scenario_qps, /*shed=*/true);
        scenarios.push_back(std::move(s));
    }

    // Isolation: the same scenarios at the same operating point, now
    // with the trainer running concurrently, one leg per policy. The
    // throttled pace derives from the MEASURED natural training rate
    // (whileTrain leg of the balanced policy): a fixed constant could
    // sit above the natural rate on a fast host and the bucket would
    // never charge a pause.
    const double natural_iters_per_sec =
        results[1].whileTrain.trainSecPerIter > 0.0
            ? 1.0 / results[1].whileTrain.trainSecPerIter
            : 20.0;
    const double throttled_rate =
        std::max(1.0, natural_iters_per_sec / 4.0);
    std::vector<IsolationResult> isolation;
    for (const Scenario sc :
         {Scenario::Steady, Scenario::Diurnal, Scenario::FlashCrowd,
          Scenario::SkewDrift, Scenario::MixedClass}) {
        IsolationResult ir;
        ir.scenario = sc;
        ir.baseQps = scenario_qps;
        for (const IsolationPolicy p :
             {IsolationPolicy::None, IsolationPolicy::Pin,
              IsolationPolicy::Throttle, IsolationPolicy::PinThrottle})
            ir.legs.push_back(
                {p, measureIsolation(setup, sc, scenario_qps, p,
                                     throttled_rate)});
        isolation.push_back(std::move(ir));
    }

    // Telemetry overhead: the registry's serving hot-path cost,
    // measured before the registry is enabled for good by any later
    // tooling (group 6a; budget <= 2%).
    const TelemetryOverhead telemetry =
        measureTelemetryOverhead(setup, /*reps=*/4);

    // Publish-cost scaling: same lot size, growing tables. Full
    // publish cost follows the table; delta follows the lot.
    std::vector<ScalePoint> scaling;
    for (const std::uint64_t mb :
         {table_mb / 4, table_mb, table_mb * 4}) {
        if (mb == 0)
            continue;
        ScalePoint s;
        s.tableMb = mb;
        scalePoint(setup, mb, SnapshotMode::Full, s.fullPublishMs,
                   s.fullRowsPerPublish);
        scalePoint(setup, mb, SnapshotMode::Delta, s.deltaPublishMs,
                   s.deltaRowsPerPublish);
        scaling.push_back(s);
    }

    TablePrinter table("Serving: batching policy sweep (" +
                       setup.model.name + ")");
    table.setHeader({"policy", "mode", "qps", "p50 ms", "p95 ms",
                     "p99 ms", "mean batch"});
    auto addModeRow = [&table](const std::string &policy,
                               const char *mode_name,
                               const Measurement &m) {
        table.addRow({policy, mode_name,
                      TablePrinter::num(m.report.qps(), 1),
                      TablePrinter::num(m.report.latency.p50 * 1e3, 3),
                      TablePrinter::num(m.report.latency.p95 * 1e3, 3),
                      TablePrinter::num(m.report.latency.p99 * 1e3, 3),
                      TablePrinter::num(m.meanBatch, 2)});
    };
    for (const auto &r : results) {
        addModeRow(r.name, "closed", r.closed);
        addModeRow(r.name, "open", r.open);
        addModeRow(r.name, "serve+train", r.whileTrain);
    }
    table.print(std::cout);

    TablePrinter fresh_table("Freshness: --publish-every=1 (" +
                             setup.model.name + ")");
    fresh_table.setHeader({"snapshot", "qps", "p99 ms",
                           "train s/iter", "publish ms", "rows/publish",
                           "pages shared"});
    for (const auto &f : freshness) {
        const auto &p = f.m.publish;
        fresh_table.addRow(
            {f.mode, TablePrinter::num(f.m.report.qps(), 1),
             TablePrinter::num(f.m.report.latency.p99 * 1e3, 3),
             TablePrinter::num(f.m.trainSecPerIter, 4),
             TablePrinter::num(
                 p.publishes == 0
                     ? 0.0
                     : p.seconds * 1e3 /
                           static_cast<double>(p.publishes),
                 3),
             TablePrinter::num(
                 p.publishes == 0
                     ? 0.0
                     : static_cast<double>(p.rowsCopied) /
                           static_cast<double>(p.publishes),
                 0),
             TablePrinter::num(static_cast<double>(p.pagesShared), 0)});
    }
    fresh_table.print(std::cout);

    TablePrinter slo_table("SLO scenarios: attainment, shedding off "
                           "vs on (base " +
                           TablePrinter::num(scenario_qps, 0) +
                           " qps, slo 5 ms)");
    slo_table.setHeader({"scenario", "shed", "attain %", "p99 ms",
                         "ok", "shed req", "expired"});
    auto addSloRow = [&slo_table](const ScenarioResult &s,
                                  const char *leg_name,
                                  const Measurement &m) {
        slo_table.addRow(
            {scenarioName(s.scenario), leg_name,
             TablePrinter::num(m.report.attainment() * 100.0, 2),
             TablePrinter::num(m.report.latency.p99 * 1e3, 3),
             TablePrinter::num(static_cast<double>(m.report.ok), 0),
             TablePrinter::num(static_cast<double>(m.report.shed), 0),
             TablePrinter::num(static_cast<double>(m.report.expired),
                               0)});
    };
    for (const auto &s : scenarios) {
        addSloRow(s, "off", s.off);
        addSloRow(s, "on", s.on);
    }
    slo_table.print(std::cout);

    TablePrinter iso_table(
        "Isolation: policy legs, serve-while-train (base " +
        TablePrinter::num(scenario_qps, 0) + " qps, slo 5 ms, throttle " +
        TablePrinter::num(throttled_rate, 1) + " iters/s)");
    iso_table.setHeader({"scenario", "policy", "attain %", "p99 ms",
                         "ok", "expired", "train s/iter",
                         "gov pause ms"});
    for (const auto &s : isolation)
        for (const auto &leg : s.legs)
            iso_table.addRow(
                {scenarioName(s.scenario),
                 isolationPolicyName(leg.policy),
                 TablePrinter::num(leg.m.report.attainment() * 100.0, 2),
                 TablePrinter::num(leg.m.report.latency.p99 * 1e3, 3),
                 TablePrinter::num(
                     static_cast<double>(leg.m.report.ok), 0),
                 TablePrinter::num(
                     static_cast<double>(leg.m.report.expired), 0),
                 TablePrinter::num(leg.m.trainSecPerIter, 4),
                 TablePrinter::num(leg.m.gov.pausedSeconds * 1e3, 1)});
    iso_table.print(std::cout);

    TablePrinter tel_table("Telemetry overhead: metrics registry off "
                           "vs on (balanced closed loop)");
    tel_table.setHeader({"metric", "value"});
    tel_table.addRow({"qps off", TablePrinter::num(telemetry.qpsOff, 1)});
    tel_table.addRow({"qps on", TablePrinter::num(telemetry.qpsOn, 1)});
    tel_table.addRow(
        {"delta %", TablePrinter::num(telemetry.deltaPct(), 2)});
    tel_table.print(std::cout);

    TablePrinter scale_table("Publish cost vs. table size "
                             "(publish-every=1)");
    scale_table.setHeader({"table MB", "full ms", "delta ms",
                           "full rows", "delta rows"});
    for (const auto &s : scaling)
        scale_table.addRow(
            {TablePrinter::num(static_cast<double>(s.tableMb), 0),
             TablePrinter::num(s.fullPublishMs, 3),
             TablePrinter::num(s.deltaPublishMs, 3),
             TablePrinter::num(
                 static_cast<double>(s.fullRowsPerPublish), 0),
             TablePrinter::num(
                 static_cast<double>(s.deltaRowsPerPublish), 0)});
    scale_table.print(std::cout);

    emitJson(out_path, setup, results, freshness, scaling, scenarios,
             isolation, throttled_rate, telemetry);
    return 0;
}
