/**
 * @file
 * Serving-tier benchmark: throughput + tail latency vs. batching
 * policy, serve-only vs. serve-while-train.
 *
 * Sweeps three micro-batching policies over the ServeEngine:
 *
 *   nobatch    max_batch=1             latency-optimal, no coalescing
 *   balanced   max_batch=8,  200 us    small batches under a tight
 *                                      deadline
 *   throughput max_batch=32, 1000 us   deep coalescing, deadline an
 *                                      order of magnitude looser
 *
 * Each policy is measured twice: against a frozen snapshot
 * (serve-only) and while a LazyDP trainer concurrently retrains and
 * republishes the model (serve-while-train) -- the paper's train-side
 * claim meets the ROADMAP's serve-side north star in one table.
 * Emits BENCH_serving.json.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "core/factory.h"
#include "data/data_loader.h"
#include "serve/load_generator.h"
#include "serve/serve_engine.h"
#include "serve/snapshot_store.h"
#include "train/trainer.h"

using namespace lazydp;

namespace {

struct PolicyResult
{
    std::string name;
    BatchPolicy policy;
    LoadReport serveOnly;
    double serveOnlyMeanBatch = 0.0;
    LoadReport whileTrain;
    double whileTrainMeanBatch = 0.0;
    double trainSecPerIter = 0.0;     //!< training speed under load
    std::uint64_t versionsPublished = 0;
};

struct BenchSetup
{
    ModelConfig model;
    std::uint64_t requests;
    std::size_t serveThreads;
    std::size_t concurrency;
    std::uint64_t trainIters;
    std::size_t trainBatch;
    std::size_t trainThreads;
    std::uint64_t seed;
};

/** One (policy, mode) measurement. */
LoadReport
measure(const BenchSetup &setup, const BatchPolicy &policy,
        bool train_concurrently, double &mean_batch,
        double &train_sec_per_iter, std::uint64_t &versions)
{
    DlrmModel model(setup.model, setup.seed);
    ModelSnapshotStore store;
    store.publish(model, 0);

    ThreadPool pool(setup.trainThreads);
    ExecContext exec(&pool);
    ServeOptions serve_opts;
    serve_opts.threads = setup.serveThreads;
    serve_opts.batch = policy;
    ServeEngine engine(store, setup.model, pool, serve_opts);

    LoadOptions load_opts;
    load_opts.requests = setup.requests;
    load_opts.concurrency = setup.concurrency;
    load_opts.seed = setup.seed + 0x10AD;
    LoadGenerator generator(engine, setup.model, load_opts);

    LoadReport report;
    std::thread load_thread(
        [&generator, &report] { report = generator.run(); });

    if (train_concurrently) {
        SyntheticDataset dataset(bench::datasetFor(
            setup.model, AccessConfig::uniform(), setup.trainBatch,
            setup.seed + 0xDA7A));
        SequentialLoader loader(dataset);
        TrainHyper hyper;
        hyper.noiseSeed = setup.seed * 31 + 7;
        auto algo = makeAlgorithm("lazydp", model, hyper);
        Trainer trainer(*algo, loader, &exec);
        TrainOptions options;
        options.publishEveryIters = 5;
        options.snapshotStore = &store;
        options.recordLosses = false;
        const TrainResult result =
            trainer.run(setup.trainIters, options);
        train_sec_per_iter = result.secondsPerIteration();
    }
    load_thread.join();
    engine.stop();
    mean_batch = engine.stats().meanBatch();
    versions = store.version();
    return report;
}

void
emitJson(const std::string &path, const BenchSetup &setup,
         const std::vector<PolicyResult> &results)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    auto mode = [&os](const char *key, const LoadReport &r,
                      double mean_batch) {
        os << "      \"" << key << "\": { \"qps\": " << r.qps()
           << ", \"p50_ms\": " << r.latency.p50 * 1e3
           << ", \"p95_ms\": " << r.latency.p95 * 1e3
           << ", \"p99_ms\": " << r.latency.p99 * 1e3
           << ", \"p999_ms\": " << r.latency.p999 * 1e3
           << ", \"mean_batch\": " << mean_batch << " }";
    };
    os << "{\n  \"bench\": \"opt_serving\",\n";
    os << "  \"model\": \"" << setup.model.name << "\",\n";
    os << "  \"requests\": " << setup.requests << ",\n";
    os << "  \"serve_threads\": " << setup.serveThreads << ",\n";
    os << "  \"concurrency\": " << setup.concurrency << ",\n";
    os << "  \"train_iters\": " << setup.trainIters << ",\n";
    os << "  \"configs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        os << "    { \"name\": \"" << r.name << "\", \"max_batch\": "
           << r.policy.maxBatch << ", \"max_delay_us\": "
           << r.policy.maxDelayUs << ",\n";
        mode("serve_only", r.serveOnly, r.serveOnlyMeanBatch);
        os << ",\n";
        mode("serve_while_train", r.whileTrain, r.whileTrainMeanBatch);
        os << ",\n      \"train_sec_per_iter\": " << r.trainSecPerIter
           << ", \"versions_published\": " << r.versionsPublished
           << " }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"comment\": \"closed-loop load; latency percentiles are "
          "nearest-rank over per-request enqueue-to-completion; "
          "serve_while_train retrains LazyDP and republishes every 5 "
          "iterations while serving\"\n";
    os << "}\n";
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv,
                       {"requests", "table-mb", "serve-threads",
                        "concurrency", "train-iters", "train-batch",
                        "threads", "seed", "kernels", "out", "help"});
    if (args.has("help")) {
        std::printf(
            "opt_serving [--requests=N] [--table-mb=N] "
            "[--serve-threads=N] [--concurrency=N] [--train-iters=N] "
            "[--train-batch=N] [--threads=N] [--seed=N] "
            "[--kernels=scalar|avx2|auto] [--out=BENCH_serving.json]\n");
        return 0;
    }
    args.applyKernels();

    BenchSetup setup;
    setup.model = ModelConfig::mlperfBench(
        args.getU64("table-mb", 32) << 20);
    setup.requests = args.getU64("requests", 2000);
    setup.serveThreads = args.getU64("serve-threads", 2);
    setup.concurrency = args.getU64("concurrency", 8);
    setup.trainIters = args.getU64("train-iters", 20);
    setup.trainBatch = args.getU64("train-batch", 256);
    setup.trainThreads = args.getThreads(2);
    setup.seed = args.getU64("seed", 1);
    const std::string out_path =
        args.getString("out", "BENCH_serving.json");

    bench::printPreamble(
        "opt_serving",
        "throughput + tail latency vs. batching policy, serve-only "
        "vs. serve-while-train");

    const std::vector<std::pair<std::string, BatchPolicy>> policies = {
        {"nobatch", {1, 0}},
        {"balanced", {8, 200}},
        {"throughput", {32, 1000}},
    };

    std::vector<PolicyResult> results;
    for (const auto &[name, policy] : policies) {
        PolicyResult r;
        r.name = name;
        r.policy = policy;
        double unused_train = 0.0;
        std::uint64_t unused_versions = 0;
        r.serveOnly =
            measure(setup, policy, /*train=*/false,
                    r.serveOnlyMeanBatch, unused_train,
                    unused_versions);
        r.whileTrain =
            measure(setup, policy, /*train=*/true,
                    r.whileTrainMeanBatch, r.trainSecPerIter,
                    r.versionsPublished);
        results.push_back(std::move(r));
    }

    TablePrinter table("Serving: batching policy sweep (" +
                       setup.model.name + ")");
    table.setHeader({"policy", "mode", "qps", "p50 ms", "p95 ms",
                     "p99 ms", "mean batch"});
    for (const auto &r : results) {
        table.addRow({r.name, "serve-only",
                      TablePrinter::num(r.serveOnly.qps(), 1),
                      TablePrinter::num(r.serveOnly.latency.p50 * 1e3, 3),
                      TablePrinter::num(r.serveOnly.latency.p95 * 1e3, 3),
                      TablePrinter::num(r.serveOnly.latency.p99 * 1e3, 3),
                      TablePrinter::num(r.serveOnlyMeanBatch, 2)});
        table.addRow(
            {r.name, "serve+train",
             TablePrinter::num(r.whileTrain.qps(), 1),
             TablePrinter::num(r.whileTrain.latency.p50 * 1e3, 3),
             TablePrinter::num(r.whileTrain.latency.p95 * 1e3, 3),
             TablePrinter::num(r.whileTrain.latency.p99 * 1e3, 3),
             TablePrinter::num(r.whileTrainMeanBatch, 2)});
    }
    table.print(std::cout);

    emitJson(out_path, setup, results);
    return 0;
}
