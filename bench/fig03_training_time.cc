/**
 * @file
 * Paper Figure 3: end-to-end training time of SGD vs DP-SGD(B/R/F)
 * as the embedding-table size grows (96 MB -> 96 GB in the paper),
 * broken into Fwd / Bwd(per-example) / Bwd(per-batch) / Model update,
 * normalized to SGD.
 *
 * Expected shape: SGD flat; all DP-SGD variants grow linearly with
 * table size; the gap between B/R/F closes as the (size-proportional)
 * model-update stage swallows their backward-pass differences.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

using namespace lazydp;
using namespace lazydp::bench;

namespace {

double
updateSeconds(const RunStats &s)
{
    return (s.timer.seconds(Stage::NoiseSampling) +
            s.timer.seconds(Stage::NoisyGradGen) +
            s.timer.seconds(Stage::NoisyGradUpdate) +
            s.timer.seconds(Stage::GradCoalesce) +
            s.timer.seconds(Stage::LazyOverhead)) /
           static_cast<double>(s.iters);
}

} // namespace

int
main()
{
    printPreamble("Figure 3",
                  "SGD vs DP-SGD(B/R/F) training time vs table size");

    // Real runs at host-scale sizes; paper sizes via the model.
    const std::uint64_t real_sizes[] = {96ull << 20, 960ull << 20};
    const std::uint64_t modeled_sizes[] = {96ull << 20, 960ull << 20,
                                           9600ull << 20,
                                           96000ull << 20};
    const char *algos[] = {"sgd", "dpsgd-b", "dpsgd-r", "dpsgd-f"};
    const std::size_t batch = 2048;

    TablePrinter table("Figure 3: training time (normalized to SGD)");
    table.setHeader({"table size", "algo", "mode", "sec/iter", "fwd",
                     "bwd(pe)", "bwd(pb)", "update", "vs SGD"});

    double sgd_ref = 0.0;
    RunStats f_stats_at_960mb;
    ModelConfig f_model_at_960mb;

    for (const std::uint64_t bytes : real_sizes) {
        for (const char *algo : algos) {
            RunSpec spec;
            spec.algo = algo;
            spec.model = ModelConfig::mlperfBench(bytes);
            spec.batch = batch;
            spec.iters = 3;
            spec.warmup = 1;
            const RunStats s = runMeasured(spec);
            const double per_iter = s.secondsPerIter();
            if (std::string(algo) == "sgd" && sgd_ref == 0.0)
                sgd_ref = per_iter;
            if (std::string(algo) == "dpsgd-f" &&
                bytes == real_sizes[1]) {
                f_stats_at_960mb = s;
                f_model_at_960mb = spec.model;
            }
            const double it = static_cast<double>(s.iters);
            table.addRow(
                {humanBytes(bytes), algo, "measured",
                 TablePrinter::num(per_iter, 4),
                 TablePrinter::num(s.timer.seconds(Stage::Forward) / it,
                                   4),
                 TablePrinter::num(
                     s.timer.seconds(Stage::BackwardPerExample) / it, 4),
                 TablePrinter::num(
                     s.timer.seconds(Stage::BackwardPerBatch) / it, 4),
                 TablePrinter::num(updateSeconds(s), 4),
                 TablePrinter::num(per_iter / sgd_ref, 1)});
        }
    }

    // Modeled extension of the DP-SGD series to the paper's sizes.
    for (const std::uint64_t bytes : modeled_sizes) {
        const double dp_sec = modeledEagerSeconds(
            f_stats_at_960mb, f_model_at_960mb, bytes, batch);
        table.addRow({humanBytes(bytes), "dpsgd-f", "modeled",
                      TablePrinter::num(dp_sec, 4), "-", "-", "-", "-",
                      TablePrinter::num(dp_sec / sgd_ref, 1)});
    }

    table.print(std::cout);
    std::printf("\nPaper anchor: DP-SGD is ~15x SGD at 96 MB growing to "
                "~250x+ at 96 GB; B/R/F differences vanish as size "
                "grows.\n");
    return 0;
}
