/**
 * @file
 * Paper Figure 13(d): robustness to training-dataset access skew --
 * uniform (Random) plus Criteo-derived Low/Medium/High skews where 90%
 * of accesses hit 36%/10%/0.6% of table rows. DP-SGD(F) is oblivious
 * to locality (the dense update dominates everything); LazyDP stays
 * within a small factor of SGD at every skew.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

using namespace lazydp;
using namespace lazydp::bench;

int
main()
{
    const std::uint64_t table_bytes = 960ull << 20;
    printPreamble("Figure 13(d)", "sensitivity to dataset skew");

    struct Case
    {
        const char *label;
        AccessConfig access;
    };
    const Case cases[] = {
        {"Random", AccessConfig::uniform()},
        {"Low", AccessConfig::criteoLow()},
        {"Medium", AccessConfig::criteoMedium()},
        {"High", AccessConfig::criteoHigh()},
    };
    const char *algos[] = {"sgd", "lazydp", "dpsgd-f"};

    TablePrinter table("Figure 13(d): training time vs skew "
                       "(normalized to SGD on Random)");
    table.setHeader(
        {"dataset", "algo", "sec/iter", "vs SGD(Random)", "lazydp ovh"});

    double ref = 0.0;
    for (const auto &c : cases) {
        for (const char *algo : algos) {
            RunSpec spec;
            spec.algo = algo;
            spec.model = ModelConfig::mlperfBench(table_bytes);
            spec.access = c.access;
            spec.batch = 2048;
            spec.iters = 3;
            spec.warmup = 1;
            const RunStats s = runMeasured(spec);
            const double sec = s.secondsPerIter();
            if (ref == 0.0 && std::string(algo) == "sgd")
                ref = sec;
            std::string ovh = "-";
            if (std::string(algo) == "lazydp") {
                ovh = TablePrinter::num(
                          100.0 * s.timer.seconds(Stage::LazyOverhead) /
                              s.timer.totalSeconds(),
                          1) +
                      "%";
            }
            table.addRow({c.label, algo, TablePrinter::num(sec, 4),
                          TablePrinter::num(sec / ref, 1), ovh});
        }
    }

    table.print(std::cout);
    std::printf("\nPaper anchors: DP-SGD(F) ~260x at every skew "
                "(bottleneck is locality-independent); LazyDP "
                "1.9-2.2x; LazyDP overhead always < 14%%.\n");
    return 0;
}
