/**
 * @file
 * Tour of every training engine in the library on one workload:
 * throughput comparison plus a live demonstration of the paper's
 * central correctness claim -- LazyDP (w/o ANS) reproduces the eager
 * DP-SGD model bit-for-bit (up to float summation order), while EANA
 * visibly deviates on never-accessed rows.
 *
 *   $ ./algorithm_tour
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/factory.h"
#include "data/data_loader.h"
#include "train/trainer.h"

using namespace lazydp;

namespace {

std::unique_ptr<DlrmModel>
trainedModel(const std::string &algo_name, const ModelConfig &cfg,
             const DatasetConfig &data_cfg, std::uint64_t steps,
             double *ms_per_step)
{
    auto model = std::make_unique<DlrmModel>(cfg, 5);
    SyntheticDataset dataset(data_cfg);
    SequentialLoader loader(dataset);
    TrainHyper hyper;
    hyper.lr = 0.05f;
    hyper.clipNorm = 1.0f;
    hyper.noiseMultiplier = 1.0f;
    hyper.noiseSeed = 0xCAFE;
    auto algo = makeAlgorithm(algo_name, *model, hyper);
    Trainer trainer(*algo, loader);
    const TrainResult r = trainer.run(steps);
    if (ms_per_step != nullptr)
        *ms_per_step = 1e3 * r.secondsPerIteration();
    return model;
}

double
maxTableDiff(DlrmModel &a, DlrmModel &b)
{
    double diff = 0.0;
    for (std::size_t t = 0; t < a.tables().size(); ++t) {
        const Tensor &wa = a.tables()[t].weights();
        const Tensor &wb = b.tables()[t].weights();
        for (std::size_t i = 0; i < wa.size(); ++i)
            diff = std::max(diff, std::abs(static_cast<double>(
                                      wa.data()[i] - wb.data()[i])));
    }
    return diff;
}

} // namespace

int
main()
{
    ModelConfig cfg = ModelConfig::tiny();
    cfg.rowsPerTable = 2048;
    DatasetConfig data_cfg;
    data_cfg.numDense = cfg.numDense;
    data_cfg.numTables = cfg.numTables;
    data_cfg.rowsPerTable = cfg.rowsPerTable;
    data_cfg.pooling = cfg.pooling;
    data_cfg.batchSize = 128;
    const std::uint64_t steps = 40;

    std::printf("running every engine for %llu steps on the same "
                "dataset (batch %zu)...\n\n",
                static_cast<unsigned long long>(steps),
                data_cfg.batchSize);
    std::printf("%-14s %12s\n", "algo", "ms/step");

    std::unique_ptr<DlrmModel> eager;
    std::unique_ptr<DlrmModel> lazy_noans;
    std::unique_ptr<DlrmModel> eana;
    for (const auto &name : algorithmNames()) {
        double ms = 0.0;
        auto model = trainedModel(name, cfg, data_cfg, steps, &ms);
        std::printf("%-14s %12.2f\n", name.c_str(), ms);
        if (name == "dpsgd-b")
            eager = std::move(model);
        if (name == "lazydp-noans")
            lazy_noans = std::move(model);
        if (name == "eana")
            eana = std::move(model);
    }

    std::printf("\nequivalence check (max |weight diff| over all "
                "embedding tables):\n");
    std::printf("  LazyDP(w/o ANS) vs DP-SGD(B): %.2e  <- identical "
                "noise, identical model\n",
                maxTableDiff(*lazy_noans, *eager));
    std::printf("  EANA            vs DP-SGD(B): %.2e  <- diverges: "
                "unaccessed rows never noised\n",
                maxTableDiff(*eana, *eager));
    return 0;
}
