/**
 * @file
 * Quickstart: train a small DLRM privately with LazyDP in ~30 lines.
 *
 * Mirrors the paper's Figure 9(a) user interface: build a model and a
 * data loader, wrap them with makePrivate(), train, and read off the
 * privacy budget.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "core/lazydp.h"
#include "data/data_loader.h"
#include "dp/accountant.h"
#include "train/trainer.h"

using namespace lazydp;

int
main()
{
    // 1. A small recommendation model: 3 embedding tables, 2 MLPs.
    ModelConfig cfg = ModelConfig::tiny();
    cfg.rowsPerTable = 4096;
    DlrmModel model(cfg, /*seed=*/1);

    // 2. A synthetic CTR dataset with Poisson subsampling (the sampling
    //    assumption under which the RDP accountant is valid).
    DatasetConfig data_cfg;
    data_cfg.numDense = cfg.numDense;
    data_cfg.numTables = cfg.numTables;
    data_cfg.rowsPerTable = cfg.rowsPerTable;
    data_cfg.pooling = cfg.pooling;
    data_cfg.batchSize = 256;
    SyntheticDataset dataset(data_cfg);
    const std::uint64_t population = 100000;
    PoissonLoader loader(dataset, population, /*expected_batch=*/256,
                         /*seed=*/7);

    // 3. Make it private (Figure 9(a)).
    LazyDpOptions options;
    options.noiseMultiplier = 1.1f;
    options.maxGradientNorm = 1.0f;
    options.lr = 0.1f;
    options.lotSize = 256; // fixed normalization under Poisson sampling
    auto private_algo = makePrivate(model, options);

    // 4. Train.
    const std::uint64_t steps = 150;
    Trainer trainer(*private_algo, loader);
    const TrainResult result = trainer.run(steps);

    // 5. Report.
    std::printf("trained %llu private steps in %.2f s (%.1f ms/step)\n",
                static_cast<unsigned long long>(result.iterations),
                result.wallSeconds,
                1e3 * result.secondsPerIteration());
    std::printf("loss: first %.4f -> last %.4f\n", result.losses.front(),
                result.losses.back());

    RdpAccountant accountant(options.noiseMultiplier,
                             loader.samplingRate());
    accountant.addSteps(steps);
    int order = 0;
    const double eps = accountant.epsilon(1e-5, &order);
    std::printf("privacy: (epsilon = %.3f, delta = 1e-5) at RDP order "
                "%d\n",
                eps, order);
    std::printf("the trained model is identical in distribution to one "
                "trained with eager DP-SGD.\n");
    return 0;
}
