/**
 * @file
 * Operational example: record a workload trace, train LazyDP over it,
 * checkpoint mid-run, resume in a "new process" (fresh objects), and
 * verify the resumed model equals an uninterrupted run bit-for-bit.
 *
 * The subtlety demonstrated here is LazyDP-specific: at checkpoint time
 * most rows carry *pending* noise that exists only as (HistoryTable
 * entry, noise seed, iteration id); persisting those three is what
 * makes cheap exact resumption possible. A released model must instead
 * be finalize()d first.
 *
 *   $ ./checkpoint_resume
 */

#include <cmath>
#include <cstdio>
#include <string>

#include "core/lazydp.h"
#include "data/input_queue.h"
#include "data/trace_dataset.h"
#include "io/checkpoint.h"
#include "train/trainer.h"

using namespace lazydp;

namespace {

ModelConfig
modelConfig()
{
    auto mc = ModelConfig::mlperfHetero(8u << 20);
    return mc;
}

TrainHyper
hyper()
{
    TrainHyper h;
    h.noiseSeed = 0x600D;
    return h;
}

double
maxDiff(DlrmModel &a, DlrmModel &b)
{
    double diff = 0.0;
    for (std::size_t t = 0; t < a.tables().size(); ++t) {
        const Tensor &wa = a.tables()[t].weights();
        const Tensor &wb = b.tables()[t].weights();
        for (std::size_t i = 0; i < wa.size(); ++i)
            diff = std::max(diff, std::abs(static_cast<double>(
                                      wa.data()[i] - wb.data()[i])));
    }
    return diff;
}

} // namespace

int
main()
{
    const std::string trace_path = "/tmp/lazydp_example_trace.txt";
    const std::string ckpt_path = "/tmp/lazydp_example_ckpt.bin";
    const std::size_t batch = 64;
    const std::uint64_t total_iters = 10;
    const std::uint64_t split = 4;

    // 1. Record a trace (stand-in for real logged traffic).
    const auto mc = modelConfig();
    DatasetConfig dc;
    dc.numDense = mc.numDense;
    dc.numTables = mc.numTables;
    dc.rowsPerTable = mc.rowsPerTable;
    dc.rowsPerTableVec = mc.rowsPerTableVec;
    dc.pooling = mc.pooling;
    dc.batchSize = batch;
    SyntheticDataset synth(dc);
    TraceDataset::record(synth, batch * (total_iters + 1), trace_path);
    TraceDataset trace(trace_path);
    std::printf("recorded %zu examples to %s\n", trace.examples(),
                trace_path.c_str());

    // 2. Reference: uninterrupted LazyDP training over the trace.
    DlrmModel ref_model(mc, 11);
    {
        TraceLoader loader(trace, batch);
        LazyDpAlgorithm lazy(ref_model, hyper(), /*use_ans=*/false);
        Trainer(lazy, loader).run(total_iters);
    }

    // 3. Interrupted run: checkpoint after `split` iterations.
    DlrmModel part_model(mc, 11);
    {
        TraceLoader loader(trace, batch);
        LazyDpAlgorithm lazy(part_model, hyper(), false);
        StageTimer timer;
        InputQueue q;
        q.push(loader.next());
        for (std::uint64_t it = 1; it <= split; ++it) {
            q.push(loader.next());
            lazy.step(it, q.head(), &q.tail(), ExecContext::serial(),
                      timer);
            q.pop();
        }
        io::saveTraining(ckpt_path, part_model, lazy, split + 1);
        std::printf("checkpointed at iteration %llu (%s)\n",
                    static_cast<unsigned long long>(split),
                    ckpt_path.c_str());
    }

    // 4. "New process": fresh objects, restore, continue, finalize.
    DlrmModel resumed_model(mc, 11);
    {
        LazyDpAlgorithm lazy(resumed_model, hyper(), false);
        const io::ResumeInfo info =
            io::loadTraining(ckpt_path, resumed_model, lazy);
        StageTimer timer;
        InputQueue q;
        q.push(trace.batch(info.nextIter - 1, batch));
        for (std::uint64_t it = info.nextIter; it <= total_iters;
             ++it) {
            const bool has_next = it < total_iters;
            if (has_next)
                q.push(trace.batch(it, batch));
            lazy.step(it, q.head(), has_next ? &q.tail() : nullptr,
                      ExecContext::serial(), timer);
            q.pop();
        }
        lazy.finalize(total_iters, ExecContext::serial(), timer);
    }

    const double diff = maxDiff(ref_model, resumed_model);
    std::printf("max |resumed - uninterrupted| over all tables: "
                "%.2e %s\n",
                diff, diff < 1e-5 ? "(exact resume: OK)" : "(MISMATCH)");

    // 5. Release path: finalized model saved standalone.
    io::saveModel("/tmp/lazydp_example_release.bin", resumed_model);
    std::printf("released finalized model to "
                "/tmp/lazydp_example_release.bin\n");
    return diff < 1e-5 ? 0 : 1;
}
