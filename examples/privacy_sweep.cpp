/**
 * @file
 * Privacy-utility sweep: trains the same model at several noise
 * multipliers and reports final loss vs the (epsilon, delta) budget --
 * the trade-off practitioners tune (cf. Denison et al., whose analysis
 * the paper builds on).
 *
 *   $ ./privacy_sweep [steps]
 */

#include <cstdio>

#include "core/lazydp.h"
#include "data/data_loader.h"
#include "dp/accountant.h"
#include "common/string_util.h"
#include "train/trainer.h"

using namespace lazydp;

int
main(int argc, char **argv)
{
    const std::uint64_t steps = argc > 1 ? parseU64(argv[1]) : 200;
    const float sigmas[] = {0.5f, 1.0f, 2.0f, 4.0f};
    const std::uint64_t population = 500000;
    const std::size_t batch = 512;

    ModelConfig cfg = ModelConfig::tiny();
    cfg.rowsPerTable = 8192;

    std::printf("privacy-utility sweep: %llu LazyDP steps, batch %zu, "
                "population %llu, delta = 1e-5\n\n",
                static_cast<unsigned long long>(steps), batch,
                static_cast<unsigned long long>(population));
    std::printf("%8s %12s %12s %14s\n", "sigma", "loss(first)",
                "loss(last)", "epsilon");

    for (const float sigma : sigmas) {
        DlrmModel model(cfg, 3);
        DatasetConfig data_cfg;
        data_cfg.numDense = cfg.numDense;
        data_cfg.numTables = cfg.numTables;
        data_cfg.rowsPerTable = cfg.rowsPerTable;
        data_cfg.pooling = cfg.pooling;
        data_cfg.batchSize = batch;
        SyntheticDataset dataset(data_cfg);
        PoissonLoader loader(dataset, population, batch, 11);

        LazyDpOptions options;
        options.noiseMultiplier = sigma;
        options.maxGradientNorm = 1.0f;
        options.lr = 0.1f;
        auto algo = makePrivate(model, options);
        Trainer trainer(*algo, loader);
        const TrainResult r = trainer.run(steps);

        RdpAccountant acc(sigma, loader.samplingRate());
        acc.addSteps(steps);
        std::printf("%8.1f %12.4f %12.4f %14.4f\n", sigma,
                    r.losses.front(), r.losses.back(),
                    acc.epsilon(1e-5));
    }

    std::printf("\nreading: larger sigma -> smaller epsilon (more "
                "privacy) but noisier training; LazyDP changes the "
                "speed of this sweep, never its outcome.\n");
    return 0;
}
