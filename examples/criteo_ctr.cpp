/**
 * @file
 * Criteo-style private CTR training.
 *
 * The workload the paper's introduction motivates: a DLRM over 26
 * categorical features whose embedding-table accesses follow the
 * highly skewed distribution of real ad-click logs (90% of accesses on
 * 0.6% of rows -- the paper's "high skew" Criteo variant). Trains the
 * same model with non-private SGD and with LazyDP and compares
 * throughput, loss, and the resulting privacy budget; also demonstrates
 * why EANA's shortcut is dangerous exactly here (skew concentrates its
 * noise on hot rows, leaving cold rows observable).
 *
 *   $ ./criteo_ctr [table_mb] [steps]
 */

#include <cstdio>
#include <memory>

#include "common/string_util.h"
#include "core/factory.h"
#include "core/lazydp.h"
#include "data/data_loader.h"
#include "dp/accountant.h"
#include "train/trainer.h"

using namespace lazydp;

namespace {

struct Outcome
{
    double msPerStep;
    double firstLoss;
    double lastLoss;
};

Outcome
trainWith(const std::string &algo_name, const ModelConfig &cfg,
          const DatasetConfig &data_cfg, std::uint64_t steps)
{
    DlrmModel model(cfg, 42);
    SyntheticDataset dataset(data_cfg);
    SequentialLoader loader(dataset);
    TrainHyper hyper;
    hyper.lr = 0.1f;
    hyper.clipNorm = 1.0f;
    hyper.noiseMultiplier = 1.1f;
    auto algo = makeAlgorithm(algo_name, model, hyper);
    Trainer trainer(*algo, loader);
    const TrainResult r = trainer.run(steps);
    return {1e3 * r.secondsPerIteration(), r.losses.front(),
            r.losses.back()};
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t table_mb =
        argc > 1 ? parseU64(argv[1]) : 192;
    const std::uint64_t steps = argc > 2 ? parseU64(argv[2]) : 30;

    ModelConfig cfg = ModelConfig::mlperfBench(table_mb << 20);
    DatasetConfig data_cfg;
    data_cfg.numDense = cfg.numDense;
    data_cfg.numTables = cfg.numTables;
    data_cfg.rowsPerTable = cfg.rowsPerTable;
    data_cfg.pooling = cfg.pooling;
    data_cfg.batchSize = 1024;
    data_cfg.access = AccessConfig::criteoHigh();

    std::printf("Criteo-style CTR model: 26 tables x %llu rows x 128 "
                "dims (%s), high-skew accesses\n",
                static_cast<unsigned long long>(cfg.rowsPerTable),
                humanBytes(cfg.tableBytes()).c_str());

    const Outcome sgd = trainWith("sgd", cfg, data_cfg, steps);
    const Outcome lazy = trainWith("lazydp", cfg, data_cfg, steps);
    const Outcome eager = trainWith("dpsgd-f", cfg, data_cfg, steps);

    std::printf("\n%-10s %14s %12s %12s\n", "algo", "ms/step",
                "loss(first)", "loss(last)");
    auto row = [&](const char *name, const Outcome &o) {
        std::printf("%-10s %14.1f %12.4f %12.4f\n", name, o.msPerStep,
                    o.firstLoss, o.lastLoss);
    };
    row("SGD", sgd);
    row("LazyDP", lazy);
    row("DP-SGD(F)", eager);
    std::printf("\nLazyDP slowdown vs SGD: %.2fx | speedup vs eager "
                "DP-SGD(F): %.2fx\n",
                lazy.msPerStep / sgd.msPerStep,
                eager.msPerStep / lazy.msPerStep);

    // privacy budget of the LazyDP run (identical accounting to eager
    // DP-SGD; this is the whole point)
    RdpAccountant acc(1.1, 1024.0 / 10e6); // batch over a 10M-user pool
    acc.addSteps(steps);
    std::printf("privacy after %llu steps over a 10M-example "
                "population: epsilon = %.4f at delta = 1e-6\n",
                static_cast<unsigned long long>(steps),
                acc.epsilon(1e-6));

    std::printf("\nwhy not EANA here? with 90%% of accesses on 0.6%% "
                "of rows, EANA leaves >99%% of rows noise-free each "
                "step, revealing which features never occur in the "
                "data. LazyDP noises every row (lazily) and stays "
                "within the DP-SGD guarantee.\n");
    return 0;
}
